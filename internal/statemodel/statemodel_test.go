package statemodel

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/paperapps"
)

func appOf(t *testing.T, name, src string) *ir.App {
	t.Helper()
	app, err := ir.BuildSource(name, src)
	if err != nil {
		t.Fatalf("BuildSource(%s): %v", name, err)
	}
	return app
}

func buildOne(t *testing.T, name, src string) *Model {
	t.Helper()
	m, err := Build(appOf(t, name, src))
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return m
}

// TestWaterLeakFourStates reproduces §4.2.1: the Water-Leak-Detector
// app has two boolean devices, hence four states.
func TestWaterLeakFourStates(t *testing.T) {
	m := buildOne(t, "water-leak", paperapps.WaterLeakDetector)
	if len(m.Vars) != 2 {
		t.Fatalf("vars = %+v", m.Vars)
	}
	if len(m.States) != 4 {
		t.Fatalf("states = %d, want 4", len(m.States))
	}
	// Transition: water.wet closes the valve from every state.
	var wetToClosed int
	for _, tr := range m.Transitions {
		if tr.Event.String() == "waterSensor.water.wet" {
			if got, _ := m.StateValue(tr.To, "valve.valve"); got != "closed" {
				t.Errorf("wet transition target valve = %s", got)
			}
			if got, _ := m.StateValue(tr.To, "waterSensor.water"); got != "wet" {
				t.Errorf("wet transition target water = %s", got)
			}
			wetToClosed++
		}
	}
	if wetToClosed != 4 {
		t.Errorf("wet transitions = %d, want 4 (one per source state)", wetToClosed)
	}
	// No water.dry transitions: the app only subscribes to water.wet.
	for _, tr := range m.Transitions {
		if strings.Contains(tr.Event.String(), "dry") {
			t.Errorf("unexpected dry transition %+v", tr)
		}
	}
}

func TestSmokeAlarmModel(t *testing.T) {
	m := buildOne(t, "smoke-alarm", paperapps.SmokeAlarm)
	// Vars: alarm(4), battery(2: <thrshld / >=thrshld), smoke(3),
	// switch(2), valve(2).
	wantVars := map[string]int{
		"alarm.alarm":         4,
		"battery.battery":     2,
		"smokeDetector.smoke": 3,
		"switch.switch":       2,
		"valve.valve":         2,
	}
	if len(m.Vars) != len(wantVars) {
		t.Fatalf("vars = %+v", varKeys(m))
	}
	for _, v := range m.Vars {
		if wantVars[v.Key] != len(v.Values) {
			t.Errorf("%s domain = %v, want %d values", v.Key, v.Values, wantVars[v.Key])
		}
	}
	if len(m.States) != 4*2*3*2*2 {
		t.Errorf("states = %d, want 96", len(m.States))
	}
	// Property abstraction: before reduction the battery alone
	// contributes ~100 states.
	if m.StatesBeforeReduction < 1000 {
		t.Errorf("before-reduction states = %d", m.StatesBeforeReduction)
	}

	// smoke.detected sirens the alarm and opens the valve.
	found := false
	for _, tr := range m.Transitions {
		if tr.Event.String() != "smokeDetector.smoke.detected" {
			continue
		}
		alarm, _ := m.StateValue(tr.To, "alarm.alarm")
		valve, _ := m.StateValue(tr.To, "valve.valve")
		if alarm == "siren" && valve == "open" {
			found = true
		}
		if alarm != "siren" || valve != "open" {
			t.Errorf("detected transition to alarm=%s valve=%s", alarm, valve)
		}
	}
	if !found {
		t.Error("no smoke.detected transition found")
	}
}

func TestBatteryEventGuardedTransition(t *testing.T) {
	m := buildOne(t, "smoke-alarm", paperapps.SmokeAlarm)
	// The battery handler turns the switch on only when
	// battery < thrshld; with the battery variable abstracted to
	// {<thrshld, >=thrshld} the transition must exist exactly for the
	// low-battery event value.
	lowSeen, highSeen := false, false
	for _, tr := range m.Transitions {
		if tr.Event.VarKey != "battery.battery" {
			continue
		}
		sw, _ := m.StateValue(tr.To, "switch.switch")
		if strings.Contains(tr.Event.Value, "<thrshld") {
			lowSeen = true
			if sw != "on" {
				t.Errorf("low-battery event should turn switch on, got %s", sw)
			}
		} else {
			highSeen = true
			fromSw, _ := m.StateValue(tr.From, "switch.switch")
			if sw != fromSw {
				t.Errorf("high-battery event should not change switch")
			}
		}
	}
	if !lowSeen {
		t.Error("no low-battery transition")
	}
	_ = highSeen // high-battery events produce no actions and may self-loop or be absent
}

func TestThermostatModelFig6(t *testing.T) {
	m := buildOne(t, "thermostat", paperapps.ThermostatEnergyControl)
	// heatingSetpoint abstracted to two states: ==68 and its negation
	// (§4.2.1: "the state space for temperature values is reduced from
	// 45 to 2").
	v, _, ok := m.VarByKey("thermostat.heatingSetpoint")
	if !ok {
		t.Fatalf("vars = %v", varKeys(m))
	}
	if len(v.Values) != 2 {
		t.Fatalf("heatingSetpoint domain = %v, want 2 values", v.Values)
	}
	// Mode change locks the door and sets the setpoint to 68.
	found := false
	for _, tr := range m.Transitions {
		if tr.Event.VarKey != "location.mode" {
			continue
		}
		lock, _ := m.StateValue(tr.To, "lock.lock")
		hsp, _ := m.StateValue(tr.To, "thermostat.heatingSetpoint")
		if lock != "locked" {
			t.Errorf("mode transition lock = %s", lock)
		}
		if !strings.Contains(hsp, "==68") {
			t.Errorf("mode transition setpoint = %s", hsp)
		}
		found = true
	}
	if !found {
		t.Error("no mode transitions")
	}
}

func TestThermostatPowerPredicates(t *testing.T) {
	m := buildOne(t, "thermostat", paperapps.ThermostatEnergyControl)
	// power abstracted by predicates >50 and <5: three feasible
	// combinations.
	v, _, ok := m.VarByKey("powerMeter.power")
	if !ok {
		t.Fatalf("vars = %v", varKeys(m))
	}
	if len(v.Values) != 3 {
		t.Fatalf("power domain = %v, want 3 values", v.Values)
	}
	// Power events: >50 turns the switch off; <5 turns it on; middle
	// leaves it unchanged.
	for _, tr := range m.Transitions {
		if tr.Event.VarKey != "powerMeter.power" {
			continue
		}
		sw, _ := m.StateValue(tr.To, "switch.switch")
		fromSw, _ := m.StateValue(tr.From, "switch.switch")
		switch {
		case strings.Contains(tr.Event.Value, ">50"):
			if sw != "off" {
				t.Errorf("power>50 event: switch = %s, want off", sw)
			}
		case strings.Contains(tr.Event.Value, "<5"):
			if sw != "on" {
				t.Errorf("power<5 event: switch = %s, want on", sw)
			}
		default:
			if sw != fromSw {
				t.Errorf("mid-range power event changed switch")
			}
		}
	}
}

func varKeys(m *Model) []string {
	var ks []string
	for _, v := range m.Vars {
		ks = append(ks, v.Key)
	}
	return ks
}

func TestDeterministicModelHasNoNondetReports(t *testing.T) {
	for _, src := range []struct{ name, src string }{
		{"water-leak", paperapps.WaterLeakDetector},
		{"smoke-alarm", paperapps.SmokeAlarm},
		{"thermostat", paperapps.ThermostatEnergyControl},
	} {
		m := buildOne(t, src.name, src.src)
		if len(m.Nondet) != 0 {
			t.Errorf("%s: nondet reports = %+v", src.name, m.Nondet)
		}
	}
}

func TestNondeterminismDetected(t *testing.T) {
	// Two handlers for the same event writing different values.
	src := `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "motion", "capability.motionSensor"
    }
}
def installed() {
    subscribe(motion, "motion.active", h1)
    subscribe(motion, "motion.active", h2)
}
def h1(evt) { sw.on() }
def h2(evt) { sw.off() }
`
	m := buildOne(t, "nondet", src)
	if len(m.Nondet) == 0 {
		t.Error("expected nondeterminism reports")
	}
}

func TestAppTouchTransitions(t *testing.T) {
	src := `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(app, touchHandler) }
def touchHandler(evt) { sw.on() }
`
	m := buildOne(t, "touch", src)
	found := false
	for _, tr := range m.Transitions {
		if tr.Event.Kind == ir.AppTouchEvent {
			found = true
			if sw, _ := m.StateValue(tr.To, "switch.switch"); sw != "on" {
				t.Errorf("app touch target switch = %s", sw)
			}
		}
	}
	if !found {
		t.Error("no app-touch transition")
	}
}

func TestModeDomainExtension(t *testing.T) {
	src := `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch.off", h) }
def h(evt) { setLocationMode("vacation") }
`
	m := buildOne(t, "mode-ext", src)
	v, _, ok := m.VarByKey("location.mode")
	if !ok {
		t.Fatalf("no mode var: %v", varKeys(m))
	}
	if _, found := v.ValueIndex("vacation"); !found {
		t.Errorf("mode domain = %v, missing vacation", v.Values)
	}
}

func TestStateLabelAndFindStates(t *testing.T) {
	m := buildOne(t, "water-leak", paperapps.WaterLeakDetector)
	states := m.FindStates(map[string]string{"waterSensor.water": "dry", "valve.valve": "open"})
	if len(states) != 1 {
		t.Fatalf("states = %v", states)
	}
	label := m.StateLabel(states[0])
	if !strings.Contains(label, "waterSensor.water=dry") || !strings.Contains(label, "valve.valve=open") {
		t.Errorf("label = %s", label)
	}
}

func TestDotOutput(t *testing.T) {
	m := buildOne(t, "water-leak", paperapps.WaterLeakDetector)
	dot := m.Dot()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "waterSensor.water.wet") {
		t.Errorf("dot = %s", dot)
	}
}

// --- Multi-app -----------------------------------------------------------

func TestMultiAppBuildSharedValve(t *testing.T) {
	smoke := appOf(t, "smoke-alarm", paperapps.SmokeAlarm)
	leak := appOf(t, "water-leak", paperapps.WaterLeakDetector)
	m, err := Build(smoke, leak)
	if err != nil {
		t.Fatal(err)
	}
	// The valve is shared: only one valve.valve variable.
	count := 0
	for _, v := range m.Vars {
		if v.Key == "valve.valve" {
			count++
			if len(v.Handles) != 2 {
				t.Errorf("valve handles = %v, want both apps'", v.Handles)
			}
		}
	}
	if count != 1 {
		t.Errorf("valve vars = %d, want 1 (merged)", count)
	}
	// The §3 interaction: a water.wet transition closes the valve even
	// from the valve-open (sprinkler active) state.
	found := false
	for _, tr := range m.Transitions {
		if tr.Event.String() != "waterSensor.water.wet" {
			continue
		}
		fromValve, _ := m.StateValue(tr.From, "valve.valve")
		toValve, _ := m.StateValue(tr.To, "valve.valve")
		if fromValve == "open" && toValve == "closed" {
			found = true
		}
	}
	if !found {
		t.Error("water-leak app does not close the open valve in the union model")
	}
}

func TestUnionMatchesJointBuild(t *testing.T) {
	smoke := appOf(t, "smoke-alarm", paperapps.SmokeAlarm)
	leak := appOf(t, "water-leak", paperapps.WaterLeakDetector)

	joint, err := Build(smoke, leak)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Build(smoke)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(leak)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Union(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Vars) != len(joint.Vars) {
		t.Fatalf("union vars = %v, joint vars = %v", varKeys(u), varKeys(joint))
	}
	if len(u.States) != len(joint.States) {
		t.Errorf("union states = %d, joint states = %d", len(u.States), len(joint.States))
	}
	// Same set of edge signatures (state labels + transition label).
	sig := func(m *Model) map[string]bool {
		set := map[string]bool{}
		for _, tr := range m.Transitions {
			set[m.StateLabel(tr.From)+"|"+tr.Label()+"|"+m.StateLabel(tr.To)] = true
		}
		return set
	}
	js, us := sig(joint), sig(u)
	for k := range js {
		if !us[k] {
			t.Errorf("edge in joint but not union: %s", k)
		}
	}
	for k := range us {
		if !js[k] {
			t.Errorf("edge in union but not joint: %s", k)
		}
	}
}

func TestInteractionVars(t *testing.T) {
	smoke := appOf(t, "smoke-alarm", paperapps.SmokeAlarm)
	leak := appOf(t, "water-leak", paperapps.WaterLeakDetector)
	m, err := Build(smoke, leak)
	if err != nil {
		t.Fatal(err)
	}
	keys, apps := m.InteractionVars()
	foundValve := false
	for _, k := range keys {
		if k == "valve.valve" {
			foundValve = true
			if len(apps[k]) != 2 {
				t.Errorf("valve apps = %v", apps[k])
			}
		}
	}
	if !foundValve {
		t.Errorf("interaction vars = %v, want valve.valve", keys)
	}
}

func TestUnionDomainMismatchRejected(t *testing.T) {
	a := appOf(t, "a", `
preferences { section("s") { input "ther", "capability.thermostat" } }
def installed() { subscribe(location, "mode", h) }
def h(evt) { ther.setHeatingSetpoint(68) }
`)
	b := appOf(t, "b", `
preferences { section("s") { input "ther", "capability.thermostat" } }
def installed() { subscribe(location, "mode", h) }
def h(evt) { ther.setHeatingSetpoint(75) }
`)
	ma, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Union(ma, mb); err == nil {
		t.Error("expected domain mismatch error (different abstractions); joint Build is the supported path")
	}
	// The joint build handles it by re-abstracting over both values.
	joint, err := Build(a, b)
	if err != nil {
		t.Fatal(err)
	}
	v, _, ok := joint.VarByKey("thermostat.heatingSetpoint")
	if !ok {
		t.Fatal("no heatingSetpoint var")
	}
	if len(v.Values) != 3 { // ==68, ==75, other
		t.Errorf("joint domain = %v", v.Values)
	}
}

func TestEventOnlyLabelsAblation(t *testing.T) {
	// With predicates dropped (the paper's earlier imprecise design),
	// the thermostat's power handler fires both branches on every
	// power event, producing nondeterminism the full analysis avoids.
	app := appOf(t, "thermostat", paperapps.ThermostatEnergyControl)
	full, err := BuildOpt(Options{}, app)
	if err != nil {
		t.Fatal(err)
	}
	eventOnly, err := BuildOpt(Options{EventOnlyLabels: true}, app)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Nondet) != 0 {
		t.Errorf("full analysis nondet = %d", len(full.Nondet))
	}
	if len(eventOnly.Nondet) == 0 {
		t.Error("event-only labels should produce nondeterminism")
	}
	if len(eventOnly.Transitions) <= len(full.Transitions) {
		t.Errorf("event-only should over-approximate transitions: %d vs %d",
			len(eventOnly.Transitions), len(full.Transitions))
	}
}

// TestUnionIdentity: the union of a single model is isomorphic to the
// model itself.
func TestUnionIdentity(t *testing.T) {
	m := buildOne(t, "smoke-alarm", paperapps.SmokeAlarm)
	u, err := Union(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Vars) != len(m.Vars) || len(u.States) != len(m.States) {
		t.Fatalf("shape changed: %d/%d vars, %d/%d states",
			len(u.Vars), len(m.Vars), len(u.States), len(m.States))
	}
	sig := func(x *Model) map[string]bool {
		set := map[string]bool{}
		for _, tr := range x.Transitions {
			set[x.StateLabel(tr.From)+"|"+tr.Label()+"|"+x.StateLabel(tr.To)] = true
		}
		return set
	}
	a, b := sig(m), sig(u)
	if len(a) != len(b) {
		t.Fatalf("edge sets differ: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Errorf("missing edge %s", k)
		}
	}
}
