package statemodel

import (
	"testing"

	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/market"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/pathcond"
)

// checkInvariants asserts the structural invariants every extracted
// model must satisfy.
func checkInvariants(t *testing.T, label string, m *Model) {
	t.Helper()
	// Variables: unique keys, non-empty deterministic domains,
	// ValueConds parallel for numeric vars.
	seen := map[string]bool{}
	for _, v := range m.Vars {
		if seen[v.Key] {
			t.Errorf("%s: duplicate variable %s", label, v.Key)
		}
		seen[v.Key] = true
		if len(v.Values) == 0 {
			t.Errorf("%s: %s has empty domain", label, v.Key)
		}
		if v.Numeric && len(v.ValueConds) != len(v.Values) {
			t.Errorf("%s: %s conds/values mismatch", label, v.Key)
		}
		vseen := map[string]bool{}
		for _, val := range v.Values {
			if vseen[val] {
				t.Errorf("%s: %s duplicate value %q", label, v.Key, val)
			}
			vseen[val] = true
		}
		if v.Numeric {
			for i, c := range v.ValueConds {
				if !pathcond.Feasible(c) {
					t.Errorf("%s: %s value %d has infeasible defining condition", label, v.Key, i)
				}
			}
		}
	}
	// States: the full product, each index in range.
	want := 1
	for _, v := range m.Vars {
		want *= len(v.Values)
	}
	if len(m.States) != want {
		t.Errorf("%s: states = %d, want product %d", label, len(m.States), want)
	}
	for si, s := range m.States {
		if len(s.Idx) != len(m.Vars) {
			t.Fatalf("%s: state %d has %d indices", label, si, len(s.Idx))
		}
		for vi, idx := range s.Idx {
			if idx < 0 || idx >= len(m.Vars[vi].Values) {
				t.Fatalf("%s: state %d index %d out of range", label, si, vi)
			}
		}
	}
	// Transitions: endpoints valid, residual guards feasible, app
	// index valid, device-event transitions set the trigger variable
	// to the event value.
	for ti, tr := range m.Transitions {
		if tr.From < 0 || tr.From >= len(m.States) || tr.To < 0 || tr.To >= len(m.States) {
			t.Fatalf("%s: transition %d endpoints out of range", label, ti)
		}
		if tr.App < 0 || tr.App >= len(m.Apps) {
			t.Fatalf("%s: transition %d app index %d", label, ti, tr.App)
		}
		if !pathcond.Feasible(tr.Guard) {
			t.Errorf("%s: transition %d has infeasible residual guard %s", label, ti, tr.Guard)
		}
		if v, vi, ok := m.VarByKey(tr.Event.VarKey); ok {
			got := v.Values[m.States[tr.To].Idx[vi]]
			if got != tr.Event.Value {
				t.Errorf("%s: transition %d event %s but target has %s=%s",
					label, ti, tr.Event, tr.Event.VarKey, got)
			}
		}
	}
}

func TestModelInvariantsPaperApps(t *testing.T) {
	for _, s := range [][2]string{
		{"smoke-alarm", paperapps.SmokeAlarm},
		{"buggy", paperapps.BuggySmokeAlarm},
		{"water-leak", paperapps.WaterLeakDetector},
		{"thermostat", paperapps.ThermostatEnergyControl},
	} {
		app, err := ir.BuildSource(s[0], s[1])
		if err != nil {
			t.Fatal(err)
		}
		m, err := Build(app)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, s[0], m)
	}
}

func TestModelInvariantsMarketCorpus(t *testing.T) {
	for _, spec := range market.All() {
		app, err := spec.Parse()
		if err != nil {
			t.Fatal(err)
		}
		m, err := Build(app)
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		checkInvariants(t, spec.ID, m)
	}
}

func TestModelInvariantsGroups(t *testing.T) {
	for _, g := range market.Groups() {
		var apps []*ir.App
		for _, id := range g.Members {
			spec, _ := market.ByID(id)
			app, err := spec.Parse()
			if err != nil {
				t.Fatal(err)
			}
			apps = append(apps, app)
		}
		m, err := Build(apps...)
		if err != nil {
			t.Fatalf("%s: %v", g.ID, err)
		}
		checkInvariants(t, g.ID, m)
	}
}

// TestBuildDeterministic: two builds of the same app produce identical
// models (variable order, state order, transition set) — required for
// reproducible reports.
func TestBuildDeterministic(t *testing.T) {
	app1, err := ir.BuildSource("smoke-alarm", paperapps.SmokeAlarm)
	if err != nil {
		t.Fatal(err)
	}
	app2, err := ir.BuildSource("smoke-alarm", paperapps.SmokeAlarm)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Build(app1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(app2)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Dot() != m2.Dot() {
		t.Error("builds differ")
	}
}
