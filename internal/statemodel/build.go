package statemodel

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/soteria-analysis/soteria/internal/capability"
	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/pathcond"
	"github.com/soteria-analysis/soteria/internal/symexec"
)

// Options tune model extraction; the zero value is the paper's full
// algorithm.
type Options struct {
	// EventOnlyLabels reproduces the paper's earlier, imprecise
	// design (§4.2): transition labels carry only events, dropping the
	// predicates that guard state changes. Used by the ablation
	// benchmark to measure the spurious nondeterminism and false
	// positives predicate labels eliminate.
	EventOnlyLabels bool
}

// Build extracts the state model of one or more apps. For a single
// app this is §4.2's per-app extraction; for several it produces the
// union model of the multi-app environment directly over the merged
// variable set (equivalent to Algorithm 2's union of the individual
// models; see Union for the structural algorithm itself).
func Build(apps ...*ir.App) (*Model, error) {
	return BuildOpt(Options{}, apps...)
}

// BuildOpt is Build with explicit options.
func BuildOpt(opt Options, apps ...*ir.App) (*Model, error) {
	return BuildBudget(nil, opt, apps...)
}

// BuildBudget is BuildOpt under a resource budget: state enumeration
// is charged against MaxStates and the extraction loops cooperatively
// check the wall-clock deadline. Exhaustion panics with a
// *guard.BudgetError for the enclosing recovery boundary; a nil
// budget disables all checks.
func BuildBudget(b *guard.Budget, opt Options, apps ...*ir.App) (*Model, error) {
	m := &Model{
		varIdx:  map[string]int{},
		stateID: map[string]int{},
		opt:     opt,
		budget:  b,
	}
	for _, app := range apps {
		am := &AppModel{App: app, HandleCap: map[string]string{}}
		for _, p := range app.Devices() {
			if p.Cap != nil {
				am.HandleCap[p.Handle] = p.Cap.Name
			}
		}
		am.Results = symexec.ExecuteAll(app)
		m.Apps = append(m.Apps, am)
	}

	m.collectVars()
	if err := m.enumerateStates(); err != nil {
		return m, err
	}
	m.deriveTransitions()
	m.detectNondeterminism()
	return m, nil
}

// ---------------------------------------------------------------------------
// Variable collection and property abstraction

// varSpec accumulates information about a prospective model variable.
type varSpec struct {
	cap        *capability.Capability
	attr       *capability.Attribute
	handles    map[string]bool
	extraVals  map[string]bool          // enum values written beyond the capability domain
	predAtoms  []pathcond.Atom          // abstraction predicates (canonical var names)
	writtenEqs map[string]pathcond.Atom // equality atoms for written numeric values
}

func (m *Model) collectVars() {
	specs := map[string]*varSpec{}
	spec := func(capName, attrName string) *varSpec {
		key := varKeyFor(capName, attrName)
		if s, ok := specs[key]; ok {
			return s
		}
		c, ok := capability.Lookup(capName)
		if !ok {
			return nil
		}
		a, ok := c.Attribute(attrName)
		if !ok {
			return nil
		}
		s := &varSpec{
			cap: c, attr: a,
			handles:    map[string]bool{},
			extraVals:  map[string]bool{},
			writtenEqs: map[string]pathcond.Atom{},
		}
		specs[key] = s
		return s
	}

	for _, am := range m.Apps {
		app := am.App
		// Every attribute of every granted device is part of the state
		// (the paper's state space is the product of the devices'
		// attributes).
		for _, p := range app.Devices() {
			if p.Cap == nil {
				continue
			}
			for _, a := range p.Cap.Attributes {
				if a.Kind == capability.Text {
					continue
				}
				if s := spec(p.Cap.Name, a.Name); s != nil {
					s.handles[p.Handle] = true
				}
			}
		}
		// The abstract location mode becomes a variable when the app
		// subscribes to mode events or changes the mode.
		usesMode := app.SubscribesToMode()
		for _, r := range am.Results {
			for _, path := range r.Paths {
				for _, act := range path.Actions {
					if act.Cap == "location" {
						usesMode = true
					}
				}
			}
		}
		if usesMode {
			spec("location", "mode")
		}

		// Collect abstraction predicates and written values.
		for _, r := range am.Results {
			trigKey := m.triggerKey(app, r.Entry.Sub)
			for _, path := range r.Paths {
				for _, atom := range path.Guard.Atoms {
					key, ok := canonicalAtomVar(app, atom.Var)
					if !ok {
						// evt.value atoms constrain the triggering
						// attribute.
						if atom.Var == "evt.value" && trigKey != "" {
							key = trigKey
						} else {
							continue
						}
					}
					s := specs[key]
					if s == nil || s.attr.Kind != capability.Numeric {
						continue
					}
					na := atom
					na.Var = key
					s.predAtoms = append(s.predAtoms, na)
				}
				for _, act := range path.Actions {
					key := varKeyFor(act.Cap, act.Attr)
					s := specs[key]
					if s == nil {
						s = spec(act.Cap, act.Attr)
						if s == nil {
							continue
						}
					}
					if act.Handle != "location" {
						s.handles[act.Handle] = true
					}
					if s.attr.Kind == capability.Numeric {
						eq := pathcond.Atom{Var: key, Op: pathcond.EQ}
						if n, err := strconv.ParseFloat(act.Value, 64); err == nil {
							eq.IsNum = true
							eq.Num = n
						} else {
							eq.RHSVar = act.Value
						}
						s.writtenEqs[eq.String()] = eq
					} else if !s.attr.HasValue(act.Value) && !act.Symbolic {
						s.extraVals[act.Value] = true
					}
				}
			}
			// Subscription values ("mode.away") extend enum domains.
			if sub := r.Entry.Sub; sub.Value != "" && trigKey != "" {
				if s := specs[trigKey]; s != nil && s.attr.Kind == capability.Enum && !s.attr.HasValue(sub.Value) {
					s.extraVals[sub.Value] = true
				}
			}
		}
	}

	// Materialise variables in deterministic order.
	before := 1
	for _, key := range sortedKeys(specs) {
		s := specs[key]
		v := &Var{
			Key: key, Cap: s.cap.Name, Attr: s.attr.Name,
			Handles: sortedKeys(s.handles),
		}
		switch s.attr.Kind {
		case capability.Enum:
			v.Values = append(v.Values, s.attr.Values...)
			for _, ev := range sortedKeys(s.extraVals) {
				v.Values = append(v.Values, ev)
			}
			before *= len(v.Values)
		case capability.Numeric:
			v.Numeric = true
			atoms := append([]pathcond.Atom{}, s.predAtoms...)
			for _, k := range sortedKeys(s.writtenEqs) {
				atoms = append(atoms, s.writtenEqs[k])
			}
			v.Values, v.ValueConds = abstractDomain(key, atoms)
			if before < maxStates {
				before *= numericLevels
			}
		}
		m.varIdx[v.Key] = len(m.Vars)
		m.Vars = append(m.Vars, v)
	}
	m.StatesBeforeReduction = before
}

// triggerKey returns the model variable key of a subscription's
// triggering attribute ("" for label-only events).
func (m *Model) triggerKey(app *ir.App, sub ir.Subscription) string {
	switch sub.Kind {
	case ir.ModeEvent:
		return "location.mode"
	case ir.AppTouchEvent, ir.TimerEvent:
		return ""
	}
	p, ok := app.PermissionByHandle(sub.Handle)
	if !ok || p.Cap == nil {
		return ""
	}
	attr := sub.Attr
	if attr == "" || func() bool { _, has := p.Cap.Attribute(attr); return !has }() {
		if pa := p.Cap.PrimaryAttribute(); pa != nil {
			attr = pa.Name
		}
	}
	return varKeyFor(p.Cap.Name, attr)
}

// ---------------------------------------------------------------------------
// State enumeration

func (m *Model) enumerateStates() error {
	total := 1
	for _, v := range m.Vars {
		total *= len(v.Values)
		if total > maxStates {
			return fmt.Errorf("state space exceeds %d states", maxStates)
		}
	}
	// Charge the whole product against the budget before materialising
	// it, so a too-large model aborts in O(vars) rather than O(states).
	m.budget.States(total, "statemodel.enumerate")
	idx := make([]int, len(m.Vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(m.Vars) {
			m.budget.Tick("statemodel.enumerate")
			m.internState(idx)
			return
		}
		for j := range m.Vars[i].Values {
			idx[i] = j
			rec(i + 1)
		}
	}
	rec(0)
	return nil
}

// ---------------------------------------------------------------------------
// Transition derivation

func (m *Model) deriveTransitions() {
	seen := map[edgeKey]bool{}
	for ai, am := range m.Apps {
		for _, r := range am.Results {
			trigKey := m.triggerKey(am.App, r.Entry.Sub)
			for _, path := range r.Paths {
				m.derivePathTransitions(ai, am, r.Entry, trigKey, path, seen)
			}
		}
	}
}

type edgeKey struct {
	from, to int
	label    string
	app      int
}

func (m *Model) derivePathTransitions(ai int, am *AppModel, ep *ir.EntryPoint, trigKey string, path symexec.Path, seen map[edgeKey]bool) {
	sub := ep.Sub
	// Determine the event values this path can fire on.
	var events []Event
	switch sub.Kind {
	case ir.AppTouchEvent:
		// Touch events are per-app: tapping one app's icon does not
		// trigger another app.
		events = []Event{{VarKey: "app.touch", Value: am.App.Name, Kind: sub.Kind}}
	case ir.TimerEvent:
		// Timer events are per-schedule (the subscription's Value is
		// the scheduled handler).
		v := sub.Value
		if v == "" {
			v = "fired"
		}
		events = []Event{{VarKey: "timer.time", Value: v, Kind: sub.Kind}}
	default:
		v, vi, ok := m.VarByKey(trigKey)
		if !ok {
			return
		}
		_ = vi
		for i, val := range v.Values {
			if sub.Value != "" && val != sub.Value {
				continue
			}
			if !m.eventConsistent(v, i, path.Guard) {
				continue
			}
			events = append(events, Event{VarKey: trigKey, Value: val, Kind: sub.Kind})
		}
	}

	for _, ev := range events {
		for s := range m.States {
			m.budget.Tick("statemodel.transitions")
			m.applyPath(ai, am, ep, path, ev, s, seen)
		}
	}
}

// eventConsistent checks the path's evt.value atoms against a
// candidate event value of the trigger variable.
func (m *Model) eventConsistent(v *Var, valIdx int, guard pathcond.Cond) bool {
	for _, atom := range guard.Atoms {
		if atom.Var != "evt.value" {
			continue
		}
		if v.Numeric {
			na := atom
			na.Var = v.Key
			vc := v.ValueConds[valIdx]
			if pathcond.Implies(vc, na.Negated()) {
				return false
			}
			continue
		}
		val := v.Values[valIdx]
		switch atom.Op {
		case pathcond.EQ:
			if !atom.IsNum && !atom.IsSym() && atom.Str != val {
				return false
			}
		case pathcond.NE:
			if !atom.IsNum && !atom.IsSym() && atom.Str == val {
				return false
			}
		}
	}
	return true
}

// applyPath derives the transition(s) of one path from state s on
// event ev.
func (m *Model) applyPath(ai int, am *AppModel, ep *ir.EntryPoint, path symexec.Path, ev Event, s int, seen map[edgeKey]bool) {
	// Post-event state: the trigger variable takes the event value.
	idx := make([]int, len(m.Vars))
	copy(idx, m.States[s].Idx)
	if ev.VarKey != "app.touch" && ev.VarKey != "timer.time" {
		v, vi, ok := m.VarByKey(ev.VarKey)
		if !ok {
			return
		}
		evi, ok := v.ValueIndex(ev.Value)
		if !ok {
			return
		}
		idx[vi] = evi
	}

	residual, ok := pathcond.True(), true
	if !m.opt.EventOnlyLabels {
		residual, ok = m.resolveGuard(am.App, path.Guard, ev, idx)
	}
	if !ok {
		return
	}

	// Apply actions in order; unknown writes fork.
	states := [][]int{idx}
	for _, act := range path.Actions {
		states = m.applyAction(states, act)
	}
	for _, target := range states {
		to := m.internState(target)
		t := Transition{
			From: s, To: to, Event: ev, Guard: residual,
			App: ai, Handler: ep.Sub.Handler, ActionsSig: path.ActionsSignature(),
		}
		k := edgeKey{from: s, to: to, label: t.Label(), app: ai}
		if seen[k] {
			continue
		}
		seen[k] = true
		m.Transitions = append(m.Transitions, t)
	}
}

// resolveGuard evaluates the path guard against the post-event state,
// returning the residual condition (atoms it cannot decide) and
// whether the guard is satisfiable in this state.
func (m *Model) resolveGuard(app *ir.App, guard pathcond.Cond, ev Event, idx []int) (pathcond.Cond, bool) {
	residual := pathcond.Cond{Opaque: guard.Opaque}
	for _, atom := range guard.Atoms {
		key, ok := canonicalAtomVar(app, atom.Var)
		if !ok {
			if atom.Var == "evt.value" {
				// Resolve against the event value.
				dec, decided := m.decideEvtAtom(atom, ev)
				if decided {
					if !dec {
						return residual, false
					}
					continue
				}
				residual = residual.WithAtom(atom)
				continue
			}
			residual = residual.WithAtom(atom)
			continue
		}
		v, vi, found := m.VarByKey(key)
		if !found {
			residual = residual.WithAtom(atom)
			continue
		}
		if v.Numeric {
			na := atom
			na.Var = key
			vc := v.ValueConds[idx[vi]]
			if pathcond.Implies(vc, na) {
				continue
			}
			if pathcond.Implies(vc, na.Negated()) {
				return residual, false
			}
			residual = residual.WithAtom(na)
			continue
		}
		val := v.Values[idx[vi]]
		if atom.IsNum || atom.IsSym() {
			residual = residual.WithAtom(atom)
			continue
		}
		switch atom.Op {
		case pathcond.EQ:
			if val != atom.Str {
				return residual, false
			}
		case pathcond.NE:
			if val == atom.Str {
				return residual, false
			}
		default:
			residual = residual.WithAtom(atom)
		}
	}
	return residual, true
}

// decideEvtAtom decides an evt.value atom against a concrete event.
func (m *Model) decideEvtAtom(atom pathcond.Atom, ev Event) (holds, decided bool) {
	if atom.IsNum || atom.IsSym() {
		// Numeric event values are resolved through the trigger
		// variable's abstract value in eventConsistent.
		v, _, ok := m.VarByKey(ev.VarKey)
		if ok && v.Numeric {
			if i, found := v.ValueIndex(ev.Value); found {
				na := atom
				na.Var = v.Key
				vc := v.ValueConds[i]
				if pathcond.Implies(vc, na) {
					return true, true
				}
				if pathcond.Implies(vc, na.Negated()) {
					return false, true
				}
			}
		}
		return false, false
	}
	switch atom.Op {
	case pathcond.EQ:
		return ev.Value == atom.Str, true
	case pathcond.NE:
		return ev.Value != atom.Str, true
	}
	return false, false
}

// applyAction applies one device action to each candidate state
// vector, possibly forking on unknown writes.
func (m *Model) applyAction(states [][]int, act symexec.Action) [][]int {
	key := varKeyFor(act.Cap, act.Attr)
	v, vi, ok := m.VarByKey(key)
	if !ok {
		return states
	}
	var targets []int
	if v.Numeric {
		eq := pathcond.Atom{Var: key, Op: pathcond.EQ}
		if n, err := strconv.ParseFloat(act.Value, 64); err == nil {
			eq.IsNum = true
			eq.Num = n
		} else {
			eq.RHSVar = act.Value
		}
		for i, vc := range v.ValueConds {
			if pathcond.Feasible(vc.WithAtom(eq)) {
				targets = append(targets, i)
			}
		}
	} else {
		if i, found := v.ValueIndex(act.Value); found {
			targets = []int{i}
		} else if act.Symbolic {
			// Unknown written value: fork to every domain value.
			for i := range v.Values {
				targets = append(targets, i)
			}
		}
	}
	if len(targets) == 0 {
		return states
	}
	var out [][]int
	for _, st := range states {
		for _, tv := range targets {
			ns := make([]int, len(st))
			copy(ns, st)
			ns[vi] = tv
			out = append(out, ns)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Nondeterminism

// detectNondeterminism flags states with two feasible same-event
// transitions to different successors (§4.2: "SOTERIA reports
// nondeterministic state models as a safety violation").
func (m *Model) detectNondeterminism() {
	group := map[string][]int{}
	for i, t := range m.Transitions {
		k := fmt.Sprintf("%d|%s", t.From, t.Event.String())
		group[k] = append(group[k], i)
	}
	const maxReports = 64
	for _, k := range sortedKeys(group) {
		ts := group[k]
		for i := 0; i < len(ts) && len(m.Nondet) < maxReports; i++ {
			m.budget.Tick("statemodel.nondet")
			for j := i + 1; j < len(ts); j++ {
				a, b := m.Transitions[ts[i]], m.Transitions[ts[j]]
				if a.To == b.To {
					continue
				}
				if pathcond.Feasible(a.Guard.And(b.Guard)) {
					m.Nondet = append(m.Nondet, NondetReport{
						State: a.From, Event: a.Event,
						ToA: a.To, ToB: b.To,
						GuardA: a.Guard, GuardB: b.Guard,
						AppA: a.App, AppB: b.App,
					})
					break
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Graphviz output

// Dot renders the model in Graphviz format, in the paper's Fig. 9
// style: states labeled with their attribute values, edges with
// event and residual predicate.
func (m *Model) Dot() string {
	var sb strings.Builder
	name := "model"
	if len(m.Apps) == 1 {
		name = m.Apps[0].App.Name
	}
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n  node [shape=box];\n", name)
	// Only states that participate in transitions are drawn, keeping
	// the output readable for large products.
	used := map[int]bool{}
	for _, t := range m.Transitions {
		used[t.From] = true
		used[t.To] = true
	}
	for s := range m.States {
		if !used[s] && len(m.Transitions) > 0 {
			continue
		}
		fmt.Fprintf(&sb, "  s%d [label=%q];\n", s, m.StateLabel(s))
	}
	for _, t := range m.Transitions {
		fmt.Fprintf(&sb, "  s%d -> s%d [label=%q];\n", t.From, t.To, t.Label())
	}
	sb.WriteString("}\n")
	return sb.String()
}
