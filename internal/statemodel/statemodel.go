// Package statemodel extracts Soteria's finite state model (Q, Σ, δ)
// from the symbolic-execution paths of one or more IoT apps
// (paper §4.2).
//
// States are the Cartesian product of device attribute values; numeric
// attributes are collapsed by property abstraction (§4.2.1): the atoms
// appearing in transition guards and in written setpoint values become
// abstraction predicates, and the attribute's abstract domain is the
// set of feasible truth assignments to them (the paper's thermostat
// goes from 45 values to {==68, ≠68}). Transitions are labeled with
// the triggering event and the residual (unresolvable) predicate
// (§4.2.2). Nondeterministic models are reported as safety violations.
//
// Devices are identified across apps by capability — a model variable
// is "capability.attribute" — which is how the multi-app union
// (Algorithm 2) removes the attributes of duplicate devices.
package statemodel

import (
	"fmt"
	"sort"
	"strings"

	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/pathcond"
	"github.com/soteria-analysis/soteria/internal/symexec"
)

// Var is one state variable of the model: a device (or abstract)
// attribute with a finite value domain.
type Var struct {
	Key     string // canonical "capability.attribute"
	Cap     string
	Attr    string
	Values  []string // domain, in deterministic order
	Numeric bool     // domain produced by property abstraction
	// ValueConds, for numeric vars, gives the defining condition of
	// each abstract value (parallel to Values). The condition's
	// variable is the canonical Key.
	ValueConds []pathcond.Cond
	// Handles lists the app device handles mapped onto this variable.
	Handles []string
}

// ValueIndex returns the index of value v in the domain.
func (v *Var) ValueIndex(val string) (int, bool) {
	for i, x := range v.Values {
		if x == val {
			return i, true
		}
	}
	return -1, false
}

// State is one assignment of every model variable, stored as domain
// indices in model variable order.
type State struct {
	Idx []int
}

// Event labels a transition with its trigger.
type Event struct {
	VarKey string // triggering attribute key ("waterSensor.water", "location.mode", "app.touch", "timer.time")
	Value  string // event value
	Kind   ir.EventKind
}

func (e Event) String() string {
	switch e.Kind {
	case ir.AppTouchEvent:
		if e.Value != "" && e.Value != "touched" {
			return "app touch:" + e.Value
		}
		return "app touch"
	case ir.TimerEvent:
		if e.Value != "" && e.Value != "fired" {
			return "timer." + e.Value
		}
		return "timer"
	}
	return e.VarKey + "." + e.Value
}

// Transition is one labeled edge of the model.
type Transition struct {
	From, To int
	Event    Event
	// Guard is the residual path condition: the part of the path's
	// predicate that could not be resolved against the state (user
	// inputs, persistent state variables, opaque terms). True when the
	// transition is unconditional.
	Guard pathcond.Cond
	// App is the index (into Model.Apps) of the app contributing the
	// transition — Algorithm 2's edge labeling.
	App     int
	Handler string
	// ActionsSig is the contributing path's action signature, kept for
	// diagnostics and the general properties.
	ActionsSig string
}

// Label renders the paper-style transition label: event plus residual
// predicate.
func (t Transition) Label() string {
	if t.Guard.IsTrue() {
		return t.Event.String()
	}
	return t.Event.String() + " [" + t.Guard.String() + "]"
}

// NondetReport describes a nondeterminism violation: one state and
// event with two feasible transitions to different successors.
type NondetReport struct {
	State  int
	Event  Event
	ToA    int
	ToB    int
	GuardA pathcond.Cond
	GuardB pathcond.Cond
	AppA   int
	AppB   int
}

// AppModel retains an app's analysis artifacts inside a model.
type AppModel struct {
	App     *ir.App
	Results []*symexec.Result
	// HandleCap maps device handles to capability names.
	HandleCap map[string]string
}

// Model is the extracted state model.
type Model struct {
	Apps        []*AppModel
	Vars        []*Var
	varIdx      map[string]int
	States      []State
	stateIdx    map[string]bool // presence; index derived from Idx encoding
	stateID     map[string]int
	Transitions []Transition
	Nondet      []NondetReport
	Warnings    []string
	opt         Options
	budget      *guard.Budget
	// StatesBeforeReduction is the would-be state count without
	// property abstraction, using the standard discretisation (100
	// levels per numeric attribute) — the Fig. 11 baseline.
	StatesBeforeReduction int
}

// VarByKey returns the model variable with the given key.
func (m *Model) VarByKey(key string) (*Var, int, bool) {
	i, ok := m.varIdx[key]
	if !ok {
		return nil, -1, false
	}
	return m.Vars[i], i, true
}

// StateValue returns the value of variable key in state s.
func (m *Model) StateValue(s int, key string) (string, bool) {
	v, i, ok := m.VarByKey(key)
	if !ok {
		return "", false
	}
	return v.Values[m.States[s].Idx[i]], true
}

// StateLabel renders a state as "[cap.attr=value, ...]".
func (m *Model) StateLabel(s int) string {
	parts := make([]string, len(m.Vars))
	for i, v := range m.Vars {
		parts[i] = v.Key + "=" + v.Values[m.States[s].Idx[i]]
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// FindStates returns the states satisfying all the given key=value
// requirements.
func (m *Model) FindStates(req map[string]string) []int {
	var out []int
	for s := range m.States {
		okAll := true
		for k, want := range req {
			got, ok := m.StateValue(s, k)
			if !ok || got != want {
				okAll = false
				break
			}
		}
		if okAll {
			out = append(out, s)
		}
	}
	return out
}

func (m *Model) stateKey(idx []int) string {
	var sb strings.Builder
	for _, i := range idx {
		fmt.Fprintf(&sb, "%d,", i)
	}
	return sb.String()
}

// internStateByIdx returns the state's ID, creating it if new.
func (m *Model) internState(idx []int) int {
	k := m.stateKey(idx)
	if id, ok := m.stateID[k]; ok {
		return id
	}
	id := len(m.States)
	cp := make([]int, len(idx))
	copy(cp, idx)
	m.States = append(m.States, State{Idx: cp})
	m.stateID[k] = id
	return id
}

// maxStates bounds state enumeration; the paper's apps stay under 200
// states after reduction.
const maxStates = 1 << 17

// numericLevels is the discretisation used for the before-reduction
// count (batteries and power meters report ~100 levels, the paper's
// §4.2.1 example).
const numericLevels = 100

// varKeyFor maps an app device handle and attribute to the canonical
// model variable key.
func varKeyFor(capName, attr string) string { return capName + "." + attr }

// canonicalAtomVar rewrites a guard atom variable of the form
// "handle.attr" into "capability.attr" for the given app; returns
// ok=false for non-device variables (evt.*, state.*, user inputs,
// opaque symbols).
func canonicalAtomVar(app *ir.App, v string) (string, bool) {
	i := strings.Index(v, ".")
	if i < 0 {
		return "", false
	}
	handle, attr := v[:i], v[i+1:]
	if handle == "location" {
		return varKeyFor("location", attr), true
	}
	p, ok := app.PermissionByHandle(handle)
	if !ok || p.Kind != ir.Device || p.Cap == nil {
		return "", false
	}
	if _, has := p.Cap.Attribute(attr); !has {
		return "", false
	}
	return varKeyFor(p.Cap.Name, attr), true
}

// sortedKeys returns map keys sorted.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// abstractDomain builds the abstract value domain of a numeric
// variable from its abstraction predicates (guard atoms over the
// variable plus equality atoms for written values). It returns the
// value labels and their defining conditions.
func abstractDomain(key string, atoms []pathcond.Atom) ([]string, []pathcond.Cond) {
	// Normalise polarity (x >= c and x < c are the same abstraction
	// predicate) and deduplicate.
	seen := map[string]bool{}
	var uniq []pathcond.Atom
	for _, a := range atoms {
		switch a.Op {
		case pathcond.GE, pathcond.GT, pathcond.NE:
			a = a.Negated()
		}
		if !seen[a.String()] {
			seen[a.String()] = true
			uniq = append(uniq, a)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].String() < uniq[j].String() })
	if len(uniq) == 0 {
		return []string{"any"}, []pathcond.Cond{pathcond.True()}
	}
	// Cap the predicate count to keep 2^n tractable.
	if len(uniq) > 8 {
		uniq = uniq[:8]
	}
	var values []string
	var conds []pathcond.Cond
	n := len(uniq)
	for mask := 0; mask < 1<<n; mask++ {
		c := pathcond.True()
		var label []string
		for i := 0; i < n; i++ {
			a := uniq[i]
			if mask&(1<<i) == 0 {
				a = a.Negated()
			}
			c = c.WithAtom(a)
			label = append(label, shortAtom(a))
		}
		if !pathcond.Feasible(c) {
			continue
		}
		values = append(values, strings.Join(label, "&"))
		conds = append(conds, c)
	}
	return values, conds
}

// shortAtom renders an atom without the variable prefix for compact
// state labels ("<5", "==68", ">=thrshld").
func shortAtom(a pathcond.Atom) string {
	var rhs string
	switch {
	case a.IsSym():
		rhs = a.RHSVar
	case a.IsNum:
		rhs = fmt.Sprintf("%g", a.Num)
	default:
		rhs = a.Str
	}
	return a.Op.String() + rhs
}
