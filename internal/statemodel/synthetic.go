package statemodel

import (
	"fmt"

	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/pathcond"
)

// NewSynthetic constructs an empty model over the given variables
// without running the extraction pipeline. It exists for harnesses
// that need models with a known shape — the conformance generators
// feed synthetic models through the Kripke translation, the SMV
// emitter, and all model-checking engines — and for tests.
//
// Each variable needs a non-empty Key and a non-empty value domain;
// duplicate keys are rejected. States and transitions are added with
// AddState and AddTransition.
func NewSynthetic(vars []*Var) (*Model, error) {
	m := &Model{
		varIdx:   map[string]int{},
		stateIdx: map[string]bool{},
		stateID:  map[string]int{},
	}
	for _, v := range vars {
		if v.Key == "" {
			return nil, fmt.Errorf("statemodel: synthetic variable with empty key")
		}
		if len(v.Values) == 0 {
			return nil, fmt.Errorf("statemodel: synthetic variable %s has an empty domain", v.Key)
		}
		if _, dup := m.varIdx[v.Key]; dup {
			return nil, fmt.Errorf("statemodel: duplicate synthetic variable %s", v.Key)
		}
		m.varIdx[v.Key] = len(m.Vars)
		m.Vars = append(m.Vars, v)
	}
	return m, nil
}

// AddState interns the state with the given domain indices (one per
// model variable, in variable order) and returns its ID. Re-adding an
// existing assignment returns the original ID.
func (m *Model) AddState(idx []int) (int, error) {
	if len(idx) != len(m.Vars) {
		return -1, fmt.Errorf("statemodel: state has %d indices for %d variables", len(idx), len(m.Vars))
	}
	for vi, i := range idx {
		if i < 0 || i >= len(m.Vars[vi].Values) {
			return -1, fmt.Errorf("statemodel: index %d out of domain for %s", i, m.Vars[vi].Key)
		}
	}
	return m.internState(idx), nil
}

// AddTransition appends a labeled edge between two interned states.
// The event's VarKey/Value become the transition label; a zero guard
// means the transition is unconditional.
func (m *Model) AddTransition(from, to int, ev Event, g pathcond.Cond) error {
	if from < 0 || from >= len(m.States) || to < 0 || to >= len(m.States) {
		return fmt.Errorf("statemodel: transition %d->%d out of range (%d states)", from, to, len(m.States))
	}
	m.Transitions = append(m.Transitions, Transition{
		From: from, To: to, Event: ev, Guard: g,
	})
	return nil
}

// DeviceEvent builds a device-attribute event label for synthetic
// transitions ("capability.attribute" changing to value).
func DeviceEvent(varKey, value string) Event {
	return Event{VarKey: varKey, Value: value, Kind: ir.DeviceEvent}
}

// NewSyntheticCollapse builds the d²-state scaling-benchmark model
// used by `soteria-bench -bdd-bench`: two variables with d values
// each, every product state present, and a "collapse" transition
// s → ⌊s/2⌋ from every non-zero state (state s is the assignment
// (s/d, s%d)). Every state reaches state 0, and backward-reachability
// fixpoints converge in ~log₂(d²) iterations — so the symbolic engine
// is exercised at 10³–10⁶ states without the fixpoint's iteration
// count growing linearly in the state count. State 0 deadlocks and
// picks up the Kripke translation's stutter self-loop.
func NewSyntheticCollapse(d int) (*Model, error) {
	if d < 2 {
		return nil, fmt.Errorf("statemodel: collapse model needs a domain of at least 2, got %d", d)
	}
	vals := make([]string, d)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%d", i)
	}
	vars := []*Var{
		{Key: "dev0.attr", Cap: "dev0", Attr: "attr", Values: vals},
		{Key: "dev1.attr", Cap: "dev1", Attr: "attr", Values: vals},
	}
	m, err := NewSynthetic(vars)
	if err != nil {
		return nil, err
	}
	n := d * d
	for s := 0; s < n; s++ {
		if _, err := m.AddState([]int{s / d, s % d}); err != nil {
			return nil, err
		}
	}
	for s := 1; s < n; s++ {
		t := s / 2
		ev := DeviceEvent("dev1.attr", vals[t%d])
		if err := m.AddTransition(s, t, ev, pathcond.True()); err != nil {
			return nil, err
		}
	}
	return m, nil
}
