package statemodel

import (
	"fmt"

	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/pathcond"
)

// NewSynthetic constructs an empty model over the given variables
// without running the extraction pipeline. It exists for harnesses
// that need models with a known shape — the conformance generators
// feed synthetic models through the Kripke translation, the SMV
// emitter, and all model-checking engines — and for tests.
//
// Each variable needs a non-empty Key and a non-empty value domain;
// duplicate keys are rejected. States and transitions are added with
// AddState and AddTransition.
func NewSynthetic(vars []*Var) (*Model, error) {
	m := &Model{
		varIdx:   map[string]int{},
		stateIdx: map[string]bool{},
		stateID:  map[string]int{},
	}
	for _, v := range vars {
		if v.Key == "" {
			return nil, fmt.Errorf("statemodel: synthetic variable with empty key")
		}
		if len(v.Values) == 0 {
			return nil, fmt.Errorf("statemodel: synthetic variable %s has an empty domain", v.Key)
		}
		if _, dup := m.varIdx[v.Key]; dup {
			return nil, fmt.Errorf("statemodel: duplicate synthetic variable %s", v.Key)
		}
		m.varIdx[v.Key] = len(m.Vars)
		m.Vars = append(m.Vars, v)
	}
	return m, nil
}

// AddState interns the state with the given domain indices (one per
// model variable, in variable order) and returns its ID. Re-adding an
// existing assignment returns the original ID.
func (m *Model) AddState(idx []int) (int, error) {
	if len(idx) != len(m.Vars) {
		return -1, fmt.Errorf("statemodel: state has %d indices for %d variables", len(idx), len(m.Vars))
	}
	for vi, i := range idx {
		if i < 0 || i >= len(m.Vars[vi].Values) {
			return -1, fmt.Errorf("statemodel: index %d out of domain for %s", i, m.Vars[vi].Key)
		}
	}
	return m.internState(idx), nil
}

// AddTransition appends a labeled edge between two interned states.
// The event's VarKey/Value become the transition label; a zero guard
// means the transition is unconditional.
func (m *Model) AddTransition(from, to int, ev Event, g pathcond.Cond) error {
	if from < 0 || from >= len(m.States) || to < 0 || to >= len(m.States) {
		return fmt.Errorf("statemodel: transition %d->%d out of range (%d states)", from, to, len(m.States))
	}
	m.Transitions = append(m.Transitions, Transition{
		From: from, To: to, Event: ev, Guard: g,
	})
	return nil
}

// DeviceEvent builds a device-attribute event label for synthetic
// transitions ("capability.attribute" changing to value).
func DeviceEvent(varKey, value string) Event {
	return Event{VarKey: varKey, Value: value, Kind: ir.DeviceEvent}
}
