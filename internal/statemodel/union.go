package statemodel

import (
	"fmt"

	"github.com/soteria-analysis/soteria/internal/pathcond"
)

// Union implements Algorithm 2: the union of several apps' state
// models. The union model's states are the Cartesian product over the
// merged attribute set (attributes of duplicate devices — same
// capability and attribute — are merged), and for every transition
// v --l--> u of input model i, an edge v' --l--> u' is added between
// every pair of union states v', u' that contain v and u respectively,
// labeled with i.
//
// The result is equivalent to Build(apps...) but is computed
// structurally from the already-extracted models, which is what §6.3
// benchmarks (4±2.1 s for 30 interacting apps in the paper's setup).
func Union(models ...*Model) (*Model, error) {
	u := &Model{
		varIdx:  map[string]int{},
		stateID: map[string]int{},
	}
	// Merge variables by key (line 1: states are tuples of attribute
	// values with duplicate devices' attributes removed).
	for _, in := range models {
		u.Apps = append(u.Apps, in.Apps...)
		for _, v := range in.Vars {
			if j, ok := u.varIdx[v.Key]; ok {
				if len(u.Vars[j].Values) != len(v.Values) || !sameValues(u.Vars[j].Values, v.Values) {
					return nil, fmt.Errorf("union: variable %s has mismatched domains (%v vs %v)",
						v.Key, u.Vars[j].Values, v.Values)
				}
				u.Vars[j].Handles = mergeStrings(u.Vars[j].Handles, v.Handles)
				continue
			}
			nv := *v
			nv.Handles = append([]string{}, v.Handles...)
			u.varIdx[nv.Key] = len(u.Vars)
			u.Vars = append(u.Vars, &nv)
		}
		if in.StatesBeforeReduction > 0 {
			if u.StatesBeforeReduction == 0 {
				u.StatesBeforeReduction = 1
			}
			u.StatesBeforeReduction *= in.StatesBeforeReduction
		}
	}
	if err := u.enumerateStates(); err != nil {
		return nil, err
	}

	// Add transitions (lines 2-12).
	appOffset := 0
	seen := map[edgeKey]bool{}
	for _, in := range models {
		// proj[i] is the union index of input variable i.
		proj := make([]int, len(in.Vars))
		for i, v := range in.Vars {
			proj[i] = u.varIdx[v.Key]
		}
		for _, t := range in.Transitions {
			from := in.States[t.From]
			to := in.States[t.To]
			// V' = union states containing v (line 5): those agreeing
			// with `from` on the input model's variables.
			for s := range u.States {
				agree := true
				for i, uj := range proj {
					if u.States[s].Idx[uj] != from.Idx[i] {
						agree = false
						break
					}
				}
				if !agree {
					continue
				}
				idx := make([]int, len(u.Vars))
				copy(idx, u.States[s].Idx)
				for i, uj := range proj {
					idx[uj] = to.Idx[i]
				}
				toID := u.internState(idx)
				nt := Transition{
					From: s, To: toID, Event: t.Event, Guard: t.Guard,
					App: appOffset + t.App, Handler: t.Handler, ActionsSig: t.ActionsSig,
				}
				k := edgeKey{from: s, to: toID, label: nt.Label(), app: nt.App}
				if seen[k] {
					continue
				}
				seen[k] = true
				u.Transitions = append(u.Transitions, nt)
			}
		}
		appOffset += len(in.Apps)
	}
	u.detectNondeterminism()
	return u, nil
}

func sameValues(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mergeStrings(a, b []string) []string {
	set := map[string]bool{}
	for _, s := range a {
		set[s] = true
	}
	out := append([]string{}, a...)
	for _, s := range b {
		if !set[s] {
			out = append(out, s)
		}
	}
	return out
}

// InteractionVars returns the keys of variables shared by at least two
// different apps of the model — the devices/events through which apps
// interact (§4.4). The second return groups, per shared variable, the
// app indices touching it.
func (m *Model) InteractionVars() ([]string, map[string][]int) {
	touch := map[string]map[int]bool{}
	mark := func(key string, app int) {
		if _, ok := m.varIdx[key]; !ok {
			return
		}
		if touch[key] == nil {
			touch[key] = map[int]bool{}
		}
		touch[key][app] = true
	}
	for ai, am := range m.Apps {
		for _, p := range am.App.Devices() {
			if p.Cap == nil {
				continue
			}
			for _, a := range p.Cap.Attributes {
				mark(varKeyFor(p.Cap.Name, a.Name), ai)
			}
		}
		for _, r := range am.Results {
			if k := m.triggerKey(am.App, r.Entry.Sub); k != "" {
				mark(k, ai)
			}
			for _, path := range r.Paths {
				for _, act := range path.Actions {
					mark(varKeyFor(act.Cap, act.Attr), ai)
				}
			}
		}
	}
	var keys []string
	apps := map[string][]int{}
	for _, k := range sortedKeys(touch) {
		if len(touch[k]) < 2 {
			continue
		}
		keys = append(keys, k)
		var list []int
		for ai := range touch[k] {
			list = append(list, ai)
		}
		sortInts(list)
		apps[k] = list
	}
	return keys, apps
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

// ResidualGuardFeasible reports whether a transition's residual guard
// is satisfiable (always true for well-formed models, present as a
// safety net for property checkers).
func ResidualGuardFeasible(t Transition) bool { return pathcond.Feasible(t.Guard) }
