package guard

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilBudgetIsNoop(t *testing.T) {
	var b *Budget
	b.Check("x")
	for i := 0; i < 1000; i++ {
		b.Tick("x")
	}
	b.States(1<<30, "x")
	b.BDDNodes(1<<30, "x")
	b.SATConflicts(1<<30, "x")
	if b.FormulaDepth() != 0 {
		t.Error("nil budget should have no formula depth limit")
	}
	if !b.Limits().Unlimited() {
		t.Error("nil budget limits should be unlimited")
	}
}

func TestBudgetStates(t *testing.T) {
	b := New(nil, Limits{MaxStates: 10})
	err := Run("enum", func() error {
		b.States(5, "enum")
		b.States(5, "enum")
		b.States(1, "enum") // 11 > 10
		return nil
	})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Resource != "states" || be.Limit != 10 || be.Stage != "enum" {
		t.Errorf("unexpected BudgetError: %+v", be)
	}
	if !IsBudget(err) {
		t.Error("IsBudget should be true")
	}
}

func TestBudgetDeadline(t *testing.T) {
	b := New(nil, Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	err := Run("stage", func() error {
		b.Check("stage")
		return nil
	})
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "wall-clock" {
		t.Fatalf("err = %v, want wall-clock *BudgetError", err)
	}
}

func TestBudgetTickAmortized(t *testing.T) {
	b := New(nil, Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	err := Run("loop", func() error {
		for i := 0; i < 10*tickMask; i++ {
			b.Tick("loop")
		}
		return nil
	})
	if !IsBudget(err) {
		t.Fatalf("err = %v, want budget exhaustion from Tick", err)
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := New(ctx, Limits{})
	err := Run("stage", func() error {
		b.Check("stage")
		return nil
	})
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CancelError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("CancelError should unwrap to context.Canceled")
	}
	if !IsBudget(err) {
		t.Error("cancellation counts as budget-class failure")
	}
}

func TestContextDeadlineMerged(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	b := New(ctx, Limits{Timeout: time.Hour})
	if !b.hasDeadline || time.Until(b.deadline) > time.Second {
		t.Error("earlier ctx deadline should win over Timeout")
	}
}

func TestRecoverToCapturesPanic(t *testing.T) {
	err := Run("boom", func() error {
		panic("kaboom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Stage != "boom" || pe.Value != "kaboom" {
		t.Errorf("unexpected PanicError: %+v", pe)
	}
	if pe.Stack == "" {
		t.Error("stack not captured")
	}
	if !IsPanic(err) || IsBudget(err) {
		t.Error("classification wrong")
	}
}

func TestRunPassesThroughErrors(t *testing.T) {
	sentinel := errors.New("plain")
	if err := Run("s", func() error { return sentinel }); err != sentinel {
		t.Errorf("err = %v, want sentinel", err)
	}
	if err := Run("s", func() error { return nil }); err != nil {
		t.Errorf("err = %v, want nil", err)
	}
}

func TestDiagnose(t *testing.T) {
	d := Diagnose("engine.explicit", "P.10", "explicit",
		&BudgetError{Resource: "states", Limit: 5, Stage: "enum"})
	if d.Kind != DiagBudget || d.Property != "P.10" || d.Engine != "explicit" {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
	d = Diagnose("statemodel", "", "", &PanicError{Stage: "statemodel", Value: "x", Stack: "st"})
	if d.Kind != DiagPanic || d.Stack != "st" {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
	d = Diagnose("parse", "", "", errors.New("syntax"))
	if d.Kind != DiagError {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
	if d.String() == "" {
		t.Error("empty String()")
	}
}
