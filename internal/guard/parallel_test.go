package guard

import (
	"context"
	"sync"
	"testing"
)

// TestParallelBudgetCeiling hammers one budget from many goroutines
// and verifies the global ceiling holds under concurrency: every
// worker eventually trips a *BudgetError, and because accounting is
// add-then-check, the counter never overshoots the limit by more than
// one in-flight charge per worker.
func TestParallelBudgetCeiling(t *testing.T) {
	const (
		workers = 16
		limit   = 10_000
	)
	b := New(context.Background(), Limits{MaxStates: limit})

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = Run("hammer", func() error {
				for {
					b.States(1, "hammer")
				}
			})
		}(w)
	}
	wg.Wait()

	for w, err := range errs {
		if !IsBudget(err) {
			t.Fatalf("worker %d: got %v, want budget error", w, err)
		}
	}
	states, _, _ := b.Spent()
	if states <= limit {
		t.Fatalf("counter %d never crossed the ceiling %d", states, limit)
	}
	if states > limit+workers {
		t.Fatalf("counter %d overshot ceiling %d by more than the worker count %d",
			states, limit, workers)
	}
}

// TestParallelBudgetTick exercises the amortized Tick path from many
// goroutines; under -race this proves the tick counter is not a data
// race and that a canceled context still trips every worker.
func TestParallelBudgetTick(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{})
	cancel()

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = Run("tick", func() error {
				for {
					b.Tick("tick")
				}
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if !IsBudget(err) {
			t.Fatalf("worker %d: got %v, want cancellation", w, err)
		}
	}
}
