package guard

import "sync/atomic"

// Gauge is a concurrency-safe instantaneous level — queue depth,
// in-flight jobs — exposed by the serving tier's /metrics endpoint.
// Like Budget, a Gauge is nil-safe: every method on a nil *Gauge is a
// no-op (Value reports 0), so instrumentation can be threaded through
// unconditionally and wired up only where someone is watching.
type Gauge struct {
	v atomic.Int64
}

// Inc raises the level by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec lowers the level by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Add moves the level by n (negative to lower).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Set replaces the level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value reports the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
