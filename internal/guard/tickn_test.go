package guard

import (
	"context"
	"testing"
	"time"
)

func TestTickNNilAndZeroSafe(t *testing.T) {
	var b *Budget
	b.TickN(1000, "test") // must not panic
	nb := New(context.Background(), Limits{})
	nb.TickN(0, "test")
	nb.TickN(1_000_000, "test")
}

// TestTickNChecksOnBoundaryCrossing pins the amortization contract: a
// bulk charge triggers the deadline check iff the shared tick counter
// crosses a 256-tick boundary, matching n individual Ticks.
func TestTickNChecksOnBoundaryCrossing(t *testing.T) {
	expired := func() *Budget {
		b := New(context.Background(), Limits{Timeout: time.Nanosecond})
		time.Sleep(time.Millisecond)
		return b
	}

	// Small charges inside one 256-tick window never check.
	b := expired()
	for i := 0; i < 25; i++ { // 25 × 10 = 250 < 256
		b.TickN(10, "test")
	}

	// The charge that crosses the boundary must panic with the budget
	// error, exactly as the 256th Tick would.
	defer func() {
		if _, ok := recover().(*BudgetError); !ok {
			t.Fatal("TickN crossing a 256-tick boundary did not trip the deadline check")
		}
	}()
	b.TickN(10, "test") // 250 → 260 crosses 256
}

// A single bulk charge far larger than the window checks immediately.
func TestTickNLargeChargeChecks(t *testing.T) {
	b := New(context.Background(), Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	defer func() {
		if _, ok := recover().(*BudgetError); !ok {
			t.Fatal("large TickN charge did not trip the deadline check")
		}
	}()
	b.TickN(4096, "test")
}
