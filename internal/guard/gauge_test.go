package guard

import (
	"sync"
	"testing"
)

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("Value() = %d, want 1", got)
	}
	g.Add(5)
	if got := g.Value(); got != 6 {
		t.Fatalf("Value() after Add(5) = %d, want 6", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("Value() after Set(42) = %d, want 42", got)
	}
}

func TestGaugeNilSafe(t *testing.T) {
	var g *Gauge
	g.Inc()
	g.Dec()
	g.Add(3)
	g.Set(9)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil Gauge Value() = %d, want 0", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("Value() after balanced inc/dec = %d, want 0", got)
	}
}
