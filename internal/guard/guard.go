// Package guard is the resilience layer of the analysis pipeline. It
// provides the two primitives every stage of the analyzer is wrapped
// in:
//
//   - Budget: a cooperative resource budget (wall-clock deadline,
//     context cancellation, state count, BDD node count, SAT conflict
//     count, formula nesting depth) checked inside the hot loops of
//     state-model construction and the model-checking engines. When a
//     limit is exceeded the budget panics with a *BudgetError, which
//     the enclosing recovery boundary converts to an error — the hot
//     loops stay free of error plumbing.
//
//   - Recovery boundaries: RecoverTo / Run convert panics (both
//     injected budget panics and genuine bugs on adversarial inputs)
//     into errors with captured stacks, so a malformed or explosive
//     app yields a structured partial result instead of killing the
//     process.
//
// Budgets are nil-safe: a nil *Budget performs no checks, so
// unbudgeted callers (existing tests, the default API) pay only a nil
// comparison in the hot loops.
//
// Budgets are also concurrency-safe: the resource counters are
// atomics, so one budget may be shared by the parallel property
// workers of a single analysis while still enforcing one global
// ceiling. Accounting is add-then-check — each worker charges its
// increment and panics if the post-add total exceeds the limit — so a
// counter can transiently overshoot the ceiling by at most one
// in-flight charge per worker before every worker has tripped.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Limits bounds an analysis run. The zero value means "unlimited"
// for every resource.
type Limits struct {
	// Timeout is the wall-clock budget for the whole run.
	Timeout time.Duration
	// MaxStates caps the number of states the state model may
	// enumerate (and the LTL product may explore).
	MaxStates int
	// MaxBDDNodes caps the number of nodes a BDD manager may allocate.
	MaxBDDNodes int
	// MaxSATConflicts caps DPLL conflicts per SAT solver call.
	MaxSATConflicts int
	// MaxFormulaDepth caps the nesting depth accepted by the CTL/LTL
	// formula parsers (0 = the parsers' built-in default).
	MaxFormulaDepth int
}

// Unlimited reports whether no limit is set.
func (l Limits) Unlimited() bool {
	return l.Timeout == 0 && l.MaxStates == 0 && l.MaxBDDNodes == 0 &&
		l.MaxSATConflicts == 0 && l.MaxFormulaDepth == 0
}

// Budget tracks resource consumption against Limits. All methods are
// safe on a nil receiver (no-ops), so budget plumbing can pass nil to
// mean "unbudgeted", and safe for concurrent use by multiple
// goroutines sharing one global ceiling.
type Budget struct {
	ctx         context.Context
	deadline    time.Time
	hasDeadline bool
	lim         Limits

	states       atomic.Int64
	bddNodes     atomic.Int64
	satConflicts atomic.Int64
	ticks        atomic.Uint64
}

// tickMask amortizes the (comparatively expensive) time/context check
// in Tick to one in every 256 calls.
const tickMask = 0xff

// New creates a budget. ctx may be nil (treated as background). A
// deadline is derived from lim.Timeout and any earlier ctx deadline.
func New(ctx context.Context, lim Limits) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	b := &Budget{ctx: ctx, lim: lim}
	if lim.Timeout > 0 {
		b.deadline = time.Now().Add(lim.Timeout)
		b.hasDeadline = true
	}
	if d, ok := ctx.Deadline(); ok && (!b.hasDeadline || d.Before(b.deadline)) {
		b.deadline = d
		b.hasDeadline = true
	}
	return b
}

// Limits returns the configured limits (zero value for nil budgets).
func (b *Budget) Limits() Limits {
	if b == nil {
		return Limits{}
	}
	return b.lim
}

// Check verifies the wall-clock deadline and context immediately
// (not amortized), panicking with a *BudgetError / *CancelError on
// exhaustion. Call it at stage entry points so an already-expired
// budget aborts promptly.
func (b *Budget) Check(stage string) {
	if b == nil {
		return
	}
	if err := b.ctx.Err(); err != nil {
		panic(&CancelError{Stage: stage, Cause: err})
	}
	if b.hasDeadline && time.Now().After(b.deadline) {
		panic(&BudgetError{Resource: "wall-clock", Limit: int64(b.lim.Timeout), Stage: stage})
	}
}

// Tick is the amortized hot-loop variant of Check: it performs the
// time/context check once every 256 calls (across all goroutines
// sharing the budget).
func (b *Budget) Tick(stage string) {
	if b == nil {
		return
	}
	if b.ticks.Add(1)&tickMask != 0 {
		return
	}
	b.Check(stage)
}

// TickN charges n hot-loop iterations at once — bulk work such as a
// BDD unique-table rehash — performing the amortized time/context
// check when the shared tick counter crosses a 256-tick boundary, so
// bulk charges keep the same checking cadence as n individual Ticks.
func (b *Budget) TickN(n uint64, stage string) {
	if b == nil || n == 0 {
		return
	}
	after := b.ticks.Add(n)
	if (after-n)>>8 == after>>8 {
		return
	}
	b.Check(stage)
}

// States charges n enumerated states, panicking with a *BudgetError
// when the MaxStates limit is exceeded.
func (b *Budget) States(n int, stage string) {
	if b == nil {
		return
	}
	total := b.states.Add(int64(n))
	if b.lim.MaxStates > 0 && total > int64(b.lim.MaxStates) {
		panic(&BudgetError{Resource: "states", Limit: int64(b.lim.MaxStates), Stage: stage})
	}
}

// BDDNodes charges n allocated BDD nodes.
func (b *Budget) BDDNodes(n int, stage string) {
	if b == nil {
		return
	}
	total := b.bddNodes.Add(int64(n))
	if b.lim.MaxBDDNodes > 0 && total > int64(b.lim.MaxBDDNodes) {
		panic(&BudgetError{Resource: "bdd-nodes", Limit: int64(b.lim.MaxBDDNodes), Stage: stage})
	}
}

// SATConflicts charges n solver conflicts.
func (b *Budget) SATConflicts(n int, stage string) {
	if b == nil {
		return
	}
	total := b.satConflicts.Add(int64(n))
	if b.lim.MaxSATConflicts > 0 && total > int64(b.lim.MaxSATConflicts) {
		panic(&BudgetError{Resource: "sat-conflicts", Limit: int64(b.lim.MaxSATConflicts), Stage: stage})
	}
}

// Spent returns the current charge totals (states, BDD nodes, SAT
// conflicts) — a consistent-enough snapshot for diagnostics and tests.
func (b *Budget) Spent() (states, bddNodes, satConflicts int64) {
	if b == nil {
		return 0, 0, 0
	}
	return b.states.Load(), b.bddNodes.Load(), b.satConflicts.Load()
}

// FormulaDepth returns the configured parser nesting limit (0 when
// unbudgeted or unset).
func (b *Budget) FormulaDepth() int {
	if b == nil {
		return 0
	}
	return b.lim.MaxFormulaDepth
}

// ---------------------------------------------------------------------------
// Errors

// BudgetError reports an exhausted resource budget.
type BudgetError struct {
	// Resource names the exhausted resource: "wall-clock", "states",
	// "bdd-nodes", "sat-conflicts", "formula-depth".
	Resource string
	// Limit is the configured bound (nanoseconds for wall-clock).
	Limit int64
	// Stage names the pipeline stage that hit the limit.
	Stage string
	// Injected marks budgets exhausted by the fault-injection harness.
	Injected bool
}

func (e *BudgetError) Error() string {
	if e.Resource == "wall-clock" {
		return fmt.Sprintf("%s: analysis budget exhausted: %s limit %s", e.Stage, e.Resource, time.Duration(e.Limit))
	}
	return fmt.Sprintf("%s: analysis budget exhausted: %s limit %d", e.Stage, e.Resource, e.Limit)
}

// CancelError reports context cancellation.
type CancelError struct {
	Stage string
	Cause error
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("%s: analysis canceled: %v", e.Stage, e.Cause)
}

func (e *CancelError) Unwrap() error { return e.Cause }

// PanicError wraps a recovered panic with its stack.
type PanicError struct {
	Stage string
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: internal fault: %v", e.Stage, e.Value)
}

// IsBudget reports whether err is (or wraps) a budget exhaustion or
// cancellation — i.e. the analysis ran out of resources rather than
// hitting a bug or bad input.
func IsBudget(err error) bool {
	var be *BudgetError
	var ce *CancelError
	return errors.As(err, &be) || errors.As(err, &ce)
}

// IsPanic reports whether err is (or wraps) a recovered panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// ---------------------------------------------------------------------------
// Recovery boundaries

// RecoverTo is the deferred half of a recovery boundary:
//
//	func stage() (err error) {
//	    defer guard.RecoverTo(&err, "stage")
//	    ...
//	}
//
// Budget and cancellation panics pass through as their error values;
// any other panic becomes a *PanicError with the captured stack. When
// fn already returned an error, a recovered panic takes precedence.
func RecoverTo(errp *error, stage string) {
	r := recover()
	if r == nil {
		return
	}
	switch v := r.(type) {
	case *BudgetError:
		*errp = v
	case *CancelError:
		*errp = v
	case *PanicError:
		*errp = v
	default:
		*errp = &PanicError{Stage: stage, Value: v, Stack: string(debug.Stack())}
	}
}

// Run executes fn inside a recovery boundary.
func Run(stage string, fn func() error) (err error) {
	defer RecoverTo(&err, stage)
	return fn()
}

// ---------------------------------------------------------------------------
// Diagnostics

// DiagKind classifies a diagnostic.
type DiagKind string

// Diagnostic kinds.
const (
	// DiagPanic marks a recovered panic (internal fault or injected).
	DiagPanic DiagKind = "panic"
	// DiagBudget marks resource-budget exhaustion or cancellation.
	DiagBudget DiagKind = "budget"
	// DiagError marks an ordinary stage error.
	DiagError DiagKind = "error"
)

// Diagnostic describes one contained failure of the pipeline: which
// stage failed, for which property and engine (when applicable), and
// why. Diagnostics accompany partial results instead of aborting the
// whole analysis.
type Diagnostic struct {
	// Stage is the pipeline stage ("statemodel", "properties.general",
	// "engine.explicit", ...).
	Stage string
	// Property is the property ID being checked, when applicable.
	Property string
	// Engine is the model-checking engine involved, when applicable.
	Engine string
	Kind   DiagKind
	// Message is the human-readable failure description.
	Message string
	// Stack is the captured goroutine stack for panics.
	Stack string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("[%s] %s", d.Kind, d.Stage)
	if d.Property != "" {
		s += " property=" + d.Property
	}
	if d.Engine != "" {
		s += " engine=" + d.Engine
	}
	return s + ": " + d.Message
}

// Diagnose classifies err into a Diagnostic.
func Diagnose(stage, property, engine string, err error) Diagnostic {
	d := Diagnostic{Stage: stage, Property: property, Engine: engine, Message: err.Error()}
	switch {
	case IsBudget(err):
		d.Kind = DiagBudget
	case IsPanic(err):
		d.Kind = DiagPanic
		var pe *PanicError
		if errors.As(err, &pe) {
			d.Stack = pe.Stack
		}
	default:
		d.Kind = DiagError
	}
	return d
}
