// Package faultinject is the fault-injection harness of the
// resilience layer. Stage boundaries throughout the pipeline call
// Hit (or HitKey, for per-property sites); in production every call
// is a single disarmed atomic load. Tests arm sites with ArmPanic or
// ArmBudget to force a panic — or a simulated budget exhaustion — at
// that exact boundary and assert that the public API still returns a
// structured partial result.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/soteria-analysis/soteria/internal/guard"
)

// Canonical injection sites, one per pipeline stage boundary.
const (
	// SiteAnalyze is the top-level public API boundary.
	SiteAnalyze = "core.analyze"
	// SiteStateModel is state-model construction.
	SiteStateModel = "statemodel.build"
	// SiteKripke is Kripke-structure translation.
	SiteKripke = "kripke.from"
	// SiteGeneral is the S.1–S.5 / nondeterminism check stage.
	SiteGeneral = "properties.general"
	// SiteTaint is the T.1–T.6 sensitive-data-flow check stage.
	SiteTaint = "properties.taint"
	// SiteProperty is the per-property check boundary; HitKey passes
	// the property ID.
	SiteProperty = "properties.property"
	// SiteEngineExplicit, SiteEngineBDD, SiteEngineBMC are the three
	// CTL engine boundaries; HitKey passes the property ID when the
	// engine runs under the property checker.
	SiteEngineExplicit = "engine.explicit"
	SiteEngineBDD      = "engine.bdd"
	SiteEngineBMC      = "engine.bmc"
	// SiteEngineLTL is the LTL checker boundary.
	SiteEngineLTL = "engine.ltl"
	// SiteCTLParse and SiteLTLParse are the formula parser boundaries.
	SiteCTLParse = "ctl.parse"
	SiteLTLParse = "ltl.parse"
	// SiteSATSolve is the SAT solver entry.
	SiteSATSolve = "sat.solve"
	// SiteBatchItem is the per-item boundary of core.AnalyzeBatch;
	// HitKey passes the item key, so tests can fault exactly one app
	// of a batch and assert the others survive.
	SiteBatchItem = "batch.item"
	// SiteFSCreate, SiteFSWrite, SiteFSSync, SiteFSRename, and
	// SiteFSSyncDir are the filesystem boundaries of the storage tier
	// (internal/fsio). They are error sites — armed with ArmError and
	// consulted with Err — so tests can simulate short writes, fsync
	// failures, and crashed renames without panicking through the
	// serving path. Err's key is the base name of the file involved.
	SiteFSCreate  = "fsio.create"
	SiteFSWrite   = "fsio.write"
	SiteFSSync    = "fsio.sync"
	SiteFSRename  = "fsio.rename"
	SiteFSSyncDir = "fsio.syncdir"
)

// Sites returns every canonical injection site, for exhaustive
// fault-injection sweeps.
func Sites() []string {
	return []string{
		SiteAnalyze, SiteStateModel, SiteKripke, SiteGeneral, SiteTaint,
		SiteProperty, SiteEngineExplicit, SiteEngineBDD, SiteEngineBMC,
		SiteEngineLTL, SiteCTLParse, SiteLTLParse, SiteSATSolve,
		SiteBatchItem,
	}
}

// ErrSites returns the filesystem error-injection sites consulted via
// Err rather than Hit.
func ErrSites() []string {
	return []string{SiteFSCreate, SiteFSWrite, SiteFSSync, SiteFSRename, SiteFSSyncDir}
}

type faultKind int

const (
	faultPanic faultKind = iota
	faultBudget
	faultError
)

type fault struct {
	kind     faultKind
	key      string // match key; "" matches every key
	resource string // for faultBudget
	err      error  // for faultError
	after    int    // matching hits to let through before firing
}

var (
	enabled  atomic.Bool
	counting atomic.Bool
	mu       sync.Mutex
	armed    map[string]fault
	counts   map[string]int
)

// ArmPanic arms site to panic on its next hits. key narrows the
// trigger to HitKey calls with that key ("" triggers on any hit).
func ArmPanic(site, key string) { arm(site, fault{kind: faultPanic, key: key}) }

// ArmBudget arms site to simulate exhaustion of the named resource:
// Hit panics with an injected *guard.BudgetError, exercising the
// budget-exhaustion paths (diagnostics, engine fallback) without
// constructing a genuinely explosive input.
func ArmBudget(site, key, resource string) {
	arm(site, fault{kind: faultBudget, key: key, resource: resource})
}

// ArmError arms an error site: matching Err calls return err instead
// of nil. Unlike ArmPanic this flavor never unwinds the stack — it is
// made for I/O boundaries (internal/fsio), where the calling code must
// handle the error like any real disk failure.
func ArmError(site, key string, err error) {
	arm(site, fault{kind: faultError, key: key, err: err})
}

// ArmErrorAfter is ArmError with a fuse: the first n matching Err
// calls pass (return nil), the rest fail. Tests use it to let a write
// protocol get partway — e.g. the data file synced but the directory
// not — before the simulated crash.
func ArmErrorAfter(site, key string, err error, n int) {
	arm(site, fault{kind: faultError, key: key, err: err, after: n})
}

func arm(site string, f fault) {
	mu.Lock()
	defer mu.Unlock()
	if armed == nil {
		armed = map[string]fault{}
	}
	armed[site] = f
	enabled.Store(true)
}

// Disarm removes the fault armed at site.
func Disarm(site string) {
	mu.Lock()
	defer mu.Unlock()
	delete(armed, site)
	enabled.Store(len(armed) > 0)
}

// Reset disarms every site and stops hit counting.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed = nil
	counts = nil
	enabled.Store(false)
	counting.Store(false)
}

// BeginCount clears and enables the per-site hit counters, so a test
// can observe exactly which sites (and keys) the pipeline dispatched —
// e.g. that a property filter keeps unrequested properties from ever
// reaching the per-property boundary.
func BeginCount() {
	mu.Lock()
	defer mu.Unlock()
	counts = map[string]int{}
	counting.Store(true)
}

// TakeCounts disables counting and returns the recorded hit counts,
// keyed "site" for anonymous hits and "site|key" for keyed hits.
func TakeCounts() map[string]int {
	mu.Lock()
	defer mu.Unlock()
	out := counts
	counts = nil
	counting.Store(false)
	if out == nil {
		out = map[string]int{}
	}
	return out
}

// Err reports the error armed at site for key, nil when the site is
// disarmed, armed for a different key, or still burning its
// ArmErrorAfter fuse. A panic- or budget-armed site behaves exactly as
// if HitKey were called, so error sites compose with the existing
// sweep machinery. Disarmed, Err costs one atomic load (plus the
// counting path shared with Hit).
func Err(site, key string) error {
	countHit(site, key)
	if !enabled.Load() {
		return nil
	}
	mu.Lock()
	f, ok := armed[site]
	if ok && f.kind == faultError && (f.key == "" || f.key == key) && f.after > 0 {
		f.after--
		armed[site] = f
		ok = false
	}
	mu.Unlock()
	if !ok || (f.key != "" && f.key != key) {
		return nil
	}
	switch f.kind {
	case faultError:
		return f.err
	case faultBudget:
		panic(&guard.BudgetError{Resource: f.resource, Stage: site, Injected: true})
	default:
		panic(fmt.Sprintf("faultinject: injected panic at %s (key %q)", site, key))
	}
}

// Hit triggers any fault armed at site. Disarmed, it costs one atomic
// load.
func Hit(site string) { HitKey(site, "") }

// HitKey triggers any fault armed at site whose key is "" or equals
// key. Sites that check one property at a time pass the property ID
// so tests can fault a single property.
func HitKey(site, key string) {
	countHit(site, key)
	if !enabled.Load() {
		return
	}
	mu.Lock()
	f, ok := armed[site]
	mu.Unlock()
	if !ok || (f.key != "" && f.key != key) {
		return
	}
	switch f.kind {
	case faultError:
		// An error fault hit through the panic API still fires, as a
		// panic — the site was armed, the boundary must not pass clean.
		panic(fmt.Sprintf("faultinject: injected error-fault at %s (key %q): %v", site, key, f.err))
	case faultBudget:
		panic(&guard.BudgetError{Resource: f.resource, Stage: site, Injected: true})
	default:
		panic(fmt.Sprintf("faultinject: injected panic at %s (key %q)", site, key))
	}
}

// countHit records one dispatch at site/key when counting is enabled.
func countHit(site, key string) {
	if !counting.Load() {
		return
	}
	k := site
	if key != "" {
		k += "|" + key
	}
	mu.Lock()
	if counts != nil {
		counts[k]++
	}
	mu.Unlock()
}
