package properties

import (
	"strings"

	"github.com/soteria-analysis/soteria/internal/capability"
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/modelcheck"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

func capLookup(name string) (*capability.Capability, bool) {
	return capability.Lookup(name)
}

// AppProperty is one entry of the P.1–P.30 catalogue (Appendix B
// Table 2). A property may have several device-set variants; it is
// checked when some variant's devices are all granted, and violated
// when any applicable variant's formula fails.
type AppProperty struct {
	ID          string
	Description string
	Variants    []Variant
}

// Variant is one device-set instantiation of a property.
type Variant struct {
	// Caps lists required capability names; "timer" and "location"
	// require the corresponding abstract events/variables.
	Caps []string
	// Build produces the CTL formula for the model; ok=false when the
	// model offers nothing to check (vacuously passing variant).
	Build func(m *statemodel.Model) (ctl.Formula, bool)
}

// Applicable reports whether the model grants every capability of the
// variant.
func (v Variant) Applicable(m *statemodel.Model) bool {
	for _, c := range v.Caps {
		if !modelHasCap(m, c) {
			return false
		}
	}
	return true
}

func modelHasCap(m *statemodel.Model, capName string) bool {
	switch capName {
	case "timer":
		for _, am := range m.Apps {
			for _, s := range am.App.Subscriptions {
				if s.Kind == ir.TimerEvent {
					return true
				}
			}
		}
		return false
	case "location":
		_, _, ok := m.VarByKey("location.mode")
		return ok
	}
	for _, v := range m.Vars {
		if v.Cap == capName {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Formula-building helpers

// evProps returns the event-marker propositions present in the model's
// transitions that match the given prefix (e.g.
// "ev:presenceSensor.presence.").
func evProps(m *statemodel.Model, prefix string) []string {
	set := map[string]bool{}
	for _, t := range m.Transitions {
		p := "ev:" + t.Event.String()
		if strings.HasPrefix(p, prefix) {
			set[p] = true
		}
	}
	return sortedMapKeys(set)
}

func orProps(props []string) ctl.Formula {
	if len(props) == 0 {
		return ctl.FalseF{}
	}
	var f ctl.Formula = ctl.Prop{Name: props[0]}
	for _, p := range props[1:] {
		f = ctl.Or{L: f, R: ctl.Prop{Name: p}}
	}
	return f
}

// valueProp is the proposition "varKey=value".
func valueProp(key, value string) ctl.Formula {
	return ctl.Prop{Name: key + "=" + value}
}

// anyValueProp builds the disjunction of "key=v" for the domain values
// accepted by pred.
func anyValueProp(m *statemodel.Model, key string, pred func(string) bool) (ctl.Formula, bool) {
	v, _, ok := m.VarByKey(key)
	if !ok {
		return nil, false
	}
	var f ctl.Formula
	for _, val := range v.Values {
		if !pred(val) {
			continue
		}
		p := valueProp(key, val)
		if f == nil {
			f = p
		} else {
			f = ctl.Or{L: f, R: p}
		}
	}
	if f == nil {
		return ctl.FalseF{}, true
	}
	return f, true
}

// afterEvent builds AG(⋁events → then); ok=false when the model has no
// matching events (vacuous).
func afterEvent(m *statemodel.Model, evPrefix string, then ctl.Formula) (ctl.Formula, bool) {
	props := evProps(m, evPrefix)
	if len(props) == 0 {
		return nil, false
	}
	return ctl.AG{X: ctl.Implies{L: orProps(props), R: then}}, true
}

// afterAnyEvent builds AG(anyEvent → then).
func afterAnyEvent(m *statemodel.Model, then ctl.Formula) (ctl.Formula, bool) {
	return afterEvent(m, "ev:", then)
}

func and2(a, b ctl.Formula) ctl.Formula { return ctl.And{L: a, R: b} }
func not(a ctl.Formula) ctl.Formula     { return ctl.Not{X: a} }

// alarmSounding is the disjunction of the alarm's active values.
func alarmSounding() ctl.Formula {
	return ctl.Or{
		L: valueProp("alarm.alarm", "siren"),
		R: ctl.Or{L: valueProp("alarm.alarm", "strobe"), R: valueProp("alarm.alarm", "both")},
	}
}

// ---------------------------------------------------------------------------
// The catalogue

// Catalogue returns the thirty application-specific properties. Each
// Build constructs an event-triggered CTL formula: Soteria checks what
// the app drives the environment to *after handling an event*, which
// avoids vacuous violations in unreachable corners of the state
// product.
func Catalogue() []AppProperty {
	return []AppProperty{
		{
			ID:          "P.1",
			Description: "The door must be locked when a user is not present at home or sleeping.",
			Variants: []Variant{
				{Caps: []string{"lock", "presenceSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:presenceSensor.presence.not present", valueProp("lock.lock", "locked"))
				}},
				{Caps: []string{"lock", "sleepSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:sleepSensor.sleeping.sleeping", valueProp("lock.lock", "locked"))
				}},
				{Caps: []string{"lock", "timer"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					// TP8-style sunrise/sunset scheduling: a timer
					// event must never leave the door unlocked.
					return afterEvent(m, "ev:timer", valueProp("lock.lock", "locked"))
				}},
			},
		},
		{
			ID:          "P.2",
			Description: "The lights must be turned on if the motion sensor is active.",
			Variants: []Variant{
				{Caps: []string{"switch", "motionSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:motionSensor.motion.active", valueProp("switch.switch", "on"))
				}},
			},
		},
		{
			ID:          "P.3",
			Description: "When there is smoke, the lights must be on and the door must be unlocked.",
			Variants: []Variant{
				{Caps: []string{"lock", "smokeDetector"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:smokeDetector.smoke.detected", valueProp("lock.lock", "unlocked"))
				}},
				// Multi-app chain variant (§4.4's App12–14 misuse case):
				// no event may leave the door locked while smoke is
				// detected in the home.
				{Caps: []string{"lock", "smokeDetector", "location"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterAnyEvent(m, ctl.Implies{
						L: valueProp("smokeDetector.smoke", "detected"),
						R: not(valueProp("lock.lock", "locked")),
					})
				}},
			},
		},
		{
			ID:          "P.4",
			Description: "The light must be on when the user arrives home.",
			Variants: []Variant{
				{Caps: []string{"switch", "presenceSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:presenceSensor.presence.present", valueProp("switch.switch", "on"))
				}},
			},
		},
		{
			ID:          "P.5",
			Description: "Camera-controlled doors must be closed when the door is clear of objects.",
			Variants: []Variant{
				{Caps: []string{"garageDoorControl", "imageCapture", "motionSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:motionSensor.motion.inactive", valueProp("garageDoorControl.door", "closed"))
				}},
			},
		},
		{
			ID:          "P.6",
			Description: "The garage door must open when people arrive and close when people leave.",
			Variants: []Variant{
				{Caps: []string{"garageDoorControl", "presenceSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					arrive, ok1 := afterEvent(m, "ev:presenceSensor.presence.present", valueProp("garageDoorControl.door", "open"))
					leave, ok2 := afterEvent(m, "ev:presenceSensor.presence.not present", valueProp("garageDoorControl.door", "closed"))
					switch {
					case ok1 && ok2:
						return and2(arrive, leave), true
					case ok1:
						return arrive, true
					case ok2:
						return leave, true
					}
					return nil, false
				}},
			},
		},
		{
			ID:          "P.7",
			Description: "The beacon must be inside the geofence to turn on the lights and open the garage door.",
			Variants: []Variant{
				{Caps: []string{"switch", "garageDoorControl", "presenceSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					// Lights/garage must not activate on a leave event.
					return afterEvent(m, "ev:presenceSensor.presence.not present",
						not(and2(valueProp("switch.switch", "on"), valueProp("garageDoorControl.door", "open"))))
				}},
			},
		},
		{
			ID:          "P.8",
			Description: "The lights must be turned off when the sleep sensor detects the user is sleeping.",
			Variants: []Variant{
				{Caps: []string{"switch", "sleepSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:sleepSensor.sleeping.sleeping", valueProp("switch.switch", "off"))
				}},
			},
		},
		{
			ID:          "P.9",
			Description: "The security system must not be disarmed when the user is not at home.",
			Variants: []Variant{
				{Caps: []string{"alarm", "presenceSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:presenceSensor.presence.not present", not(valueProp("alarm.alarm", "off")))
				}},
			},
		},
		{
			ID:          "P.10",
			Description: "The alarm must sound when there is smoke or carbon monoxide.",
			Variants: []Variant{
				{Caps: []string{"alarm", "smokeDetector"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:smokeDetector.smoke.detected", alarmSounding())
				}},
				{Caps: []string{"alarm", "carbonMonoxideDetector"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:carbonMonoxideDetector.carbonMonoxide.detected", alarmSounding())
				}},
			},
		},
		{
			ID:          "P.11",
			Description: "The valve must be closed when the water sensor is wet or the water level exceeds the user threshold.",
			Variants: []Variant{
				{Caps: []string{"valve", "waterSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:waterSensor.water.wet", valueProp("valve.valve", "closed"))
				}},
			},
		},
		{
			ID:          "P.12",
			Description: "Devices must not be turned on when the user is not at home or sleeping.",
			Variants: []Variant{
				{Caps: []string{"switch", "presenceSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:presenceSensor.presence.not present", valueProp("switch.switch", "off"))
				}},
				// The location variant needs a motion sensor: absence
				// of the user is signalled by motion-inactive driving
				// the away mode (the G.3 misuse chain).
				{Caps: []string{"switch", "location", "motionSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:location.mode.away", valueProp("switch.switch", "off"))
				}},
			},
		},
		{
			ID:          "P.13",
			Description: "Device functionality (coffee machine, crock-pot, music) must not be used when the user is away, or only at the user-set time.",
			Variants: []Variant{
				{Caps: []string{"musicPlayer", "presenceSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:presenceSensor.presence.not present", not(valueProp("musicPlayer.status", "playing")))
				}},
				{Caps: []string{"switch", "presenceSensor", "timer"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					then := ctl.Implies{
						L: valueProp("presenceSensor.presence", "not present"),
						R: valueProp("switch.switch", "off"),
					}
					return afterEvent(m, "ev:timer", then)
				}},
				{Caps: []string{"musicPlayer", "location", "motionSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:location.mode.away", not(valueProp("musicPlayer.status", "playing")))
				}},
			},
		},
		{
			ID:          "P.14",
			Description: "The refrigerator, alarm, and security system must not be disabled.",
			Variants: []Variant{
				{Caps: []string{"alarm", "location"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:location.mode.", not(valueProp("alarm.alarm", "off")))
				}},
				// Security-system switches must stay on across mode
				// changes in an environment that also automates the
				// thermostat (the G.3 device set).
				{Caps: []string{"switch", "location", "thermostat"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:location.mode.", valueProp("switch.switch", "on"))
				}},
			},
		},
		{
			ID:          "P.15",
			Description: "The temperature must follow the user's operating-mode values on motion, and the idle values otherwise.",
			Variants: []Variant{
				{Caps: []string{"thermostat", "motionSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					set, ok := anyValueProp(m, "thermostat.heatingSetpoint", func(v string) bool {
						return strings.Contains(v, "==")
					})
					if !ok {
						return nil, false
					}
					return afterEvent(m, "ev:motionSensor.motion.active", set)
				}},
			},
		},
		{
			ID:          "P.16",
			Description: "The thermostat temperature entered by the user must be applied when the mode changes.",
			Variants: []Variant{
				{Caps: []string{"thermostat", "location"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					set, ok := anyValueProp(m, "thermostat.heatingSetpoint", func(v string) bool {
						return strings.Contains(v, "==")
					})
					if !ok {
						return nil, false
					}
					return afterEvent(m, "ev:location.mode.", set)
				}},
			},
		},
		{
			ID:          "P.17",
			Description: "The AC and heater must not be on at the same time.",
			Variants: []Variant{
				{Caps: []string{"switch", "fanControl"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterAnyEvent(m, not(and2(valueProp("switch.switch", "on"), valueProp("fanControl.fan", "on"))))
				}},
				{Caps: []string{"thermostat", "fanControl"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterAnyEvent(m, not(and2(valueProp("thermostat.thermostatMode", "heat"), valueProp("fanControl.fan", "on"))))
				}},
			},
		},
		{
			ID:          "P.18",
			Description: "HVACs, fans, and heaters must be off when temperature/humidity are out of the user zone.",
			Variants: []Variant{
				{Caps: []string{"switch", "relativeHumidityMeasurement"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					props := evProps(m, "ev:relativeHumidityMeasurement.humidity.")
					var out []string
					for _, p := range props {
						if strings.Contains(p, ">") {
							out = append(out, p)
						}
					}
					if len(out) == 0 {
						return nil, false
					}
					return ctl.AG{X: ctl.Implies{L: orProps(out), R: valueProp("switch.switch", "off")}}, true
				}},
			},
		},
		{
			ID:          "P.19",
			Description: "The AC must be on when the user is within the configured distance of the house.",
			Variants: []Variant{
				{Caps: []string{"fanControl", "presenceSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:presenceSensor.presence.present", valueProp("fanControl.fan", "on"))
				}},
			},
		},
		{
			ID:          "P.20",
			Description: "The security camera must take pictures when motion and contact sensors are active.",
			Variants: []Variant{
				{Caps: []string{"imageCapture", "motionSensor", "contactSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:motionSensor.motion.active", valueProp("imageCapture.image", "taken"))
				}},
			},
		},
		{
			ID:          "P.21",
			Description: "The camera must take a photo and the alarm must sound when doors open during user-specified times.",
			Variants: []Variant{
				{Caps: []string{"alarm", "contactSensor", "imageCapture"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:contactSensor.contact.open",
						and2(alarmSounding(), valueProp("imageCapture.image", "taken")))
				}},
			},
		},
		{
			ID:          "P.22",
			Description: "The battery of devices must not be below the specified threshold (a warning action must fire).",
			Variants: []Variant{
				{Caps: []string{"battery", "switch"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					// On a low-battery event the warning switch must
					// be driven on.
					props := evProps(m, "ev:battery.battery.")
					var low []string
					for _, p := range props {
						if strings.Contains(p, "<") {
							low = append(low, p)
						}
					}
					if len(low) == 0 {
						return nil, false
					}
					return ctl.AG{X: ctl.Implies{L: orProps(low), R: valueProp("switch.switch", "on")}}, true
				}},
			},
		},
		{
			ID:          "P.23",
			Description: "The door must not be unlocked for an unauthorized face.",
			Variants: []Variant{
				{Caps: []string{"lock", "imageCapture", "motionSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:motionSensor.motion.active", not(valueProp("lock.lock", "unlocked")))
				}},
			},
		},
		{
			ID:          "P.24",
			Description: "The windows must not be open when the heater is on.",
			Variants: []Variant{
				{Caps: []string{"windowShade", "switch"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterAnyEvent(m, not(and2(valueProp("windowShade.windowShade", "open"), valueProp("switch.switch", "on"))))
				}},
			},
		},
		{
			ID:          "P.25",
			Description: "The bell must not chime when the door is closed.",
			Variants: []Variant{
				{Caps: []string{"musicPlayer", "contactSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:contactSensor.contact.closed", not(valueProp("musicPlayer.status", "playing")))
				}},
			},
		},
		{
			ID:          "P.26",
			Description: "The alarm must go off when the main door is left open for too long.",
			Variants: []Variant{
				{Caps: []string{"alarm", "contactSensor", "timer"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					then := ctl.Implies{L: valueProp("contactSensor.contact", "open"), R: alarmSounding()}
					return afterEvent(m, "ev:timer", then)
				}},
			},
		},
		{
			ID:          "P.27",
			Description: "The mode must be home when the user is at home and away otherwise.",
			Variants: []Variant{
				{Caps: []string{"location", "presenceSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					home, ok1 := afterEvent(m, "ev:presenceSensor.presence.present", valueProp("location.mode", "home"))
					away, ok2 := afterEvent(m, "ev:presenceSensor.presence.not present", valueProp("location.mode", "away"))
					switch {
					case ok1 && ok2:
						return and2(home, away), true
					case ok1:
						return home, true
					case ok2:
						return away, true
					}
					return nil, false
				}},
			},
		},
		{
			ID:          "P.28",
			Description: "The sound system must not play during sleeping mode or when the user is away.",
			Variants: []Variant{
				{Caps: []string{"musicPlayer", "sleepSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:sleepSensor.sleeping.sleeping", not(valueProp("musicPlayer.status", "playing")))
				}},
			},
		},
		{
			ID:          "P.29",
			Description: "The flood sensor must activate the alarm when there is water (and not otherwise).",
			Variants: []Variant{
				{Caps: []string{"alarm", "waterSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					wet, ok1 := afterEvent(m, "ev:waterSensor.water.wet", alarmSounding())
					dry, ok2 := afterEvent(m, "ev:waterSensor.water.dry", not(alarmSounding()))
					switch {
					case ok1 && ok2:
						return and2(wet, dry), true
					case ok1:
						return wet, true
					case ok2:
						return dry, true
					}
					return nil, false
				}},
			},
		},
		{
			ID:          "P.30",
			Description: "The water valve must shut off when the moisture sensor detects a leak.",
			Variants: []Variant{
				{Caps: []string{"valve", "waterSensor"}, Build: func(m *statemodel.Model) (ctl.Formula, bool) {
					return afterEvent(m, "ev:waterSensor.water.wet", valueProp("valve.valve", "closed"))
				}},
			},
		},
	}
}

// PropertyByID returns the catalogue entry with the given ID.
func PropertyByID(id string) (AppProperty, bool) {
	for _, p := range Catalogue() {
		if p.ID == id {
			return p, true
		}
	}
	return AppProperty{}, false
}

// PropertyOutcome is the verdict of one catalogue formula under a
// pluggable checker: either a decision (Holds plus counterexample
// material) or a failure (Err non-nil, property undecided). The
// Diagnostics record contained engine failures — present even on a
// successful decision when a fallback engine had to step in.
type PropertyOutcome struct {
	Holds bool
	// FailingStates counts the initial states violating the formula.
	FailingStates int
	// Counterexample is a rendered model trace, when available.
	Counterexample string
	// Engine names the engine that produced the decision.
	Engine string
	// Diagnostics record contained failures encountered on the way.
	Diagnostics []guard.Diagnostic
	// Err, when non-nil, means no engine could decide the formula.
	Err error
}

// PropertyChecker decides one catalogue formula. Implementations
// impose budgets, recovery boundaries, and engine fallback; they must
// not panic.
type PropertyChecker func(propID string, f ctl.Formula) PropertyOutcome

// AppSpecificReport is the outcome of a catalogue sweep.
type AppSpecificReport struct {
	Violations []Violation
	// Checked lists the property IDs for which every applicable variant
	// was decided, in catalogue order.
	Checked []string
	// Diagnostics aggregates the contained failures of all properties.
	Diagnostics []guard.Diagnostic
	// Incomplete is true when at least one applicable variant could not
	// be decided.
	Incomplete bool
}

// CheckAppSpecificWith sweeps the whole catalogue sequentially,
// deciding each applicable variant's formula with check. A variant
// failure is contained: the property is marked undecided and the sweep
// continues, so the report still carries verdicts for every other
// property. See CheckAppSpecificOpts for property filtering and
// parallel dispatch.
func CheckAppSpecificWith(m *statemodel.Model, check PropertyChecker) AppSpecificReport {
	return CheckAppSpecificOpts(m, check, SweepOptions{})
}

// ExplicitChecker returns an unbudgeted PropertyChecker backed by the
// explicit-state engine — the legacy single-engine behavior.
func ExplicitChecker(k *kripke.Structure) PropertyChecker {
	return func(propID string, f ctl.Formula) PropertyOutcome {
		r := modelcheck.Check(k, f)
		out := PropertyOutcome{Holds: r.Holds, FailingStates: len(r.FailingStates), Engine: "explicit"}
		if !r.Holds && len(r.Counterexample) > 0 {
			out.Counterexample = k.RenderPath(r.Counterexample)
		}
		return out
	}
}

// CheckAppSpecific verifies every applicable catalogue property on the
// model with the explicit-state model checker and returns the
// violations found.
func CheckAppSpecific(m *statemodel.Model, k *kripke.Structure) []Violation {
	return CheckAppSpecificWith(m, ExplicitChecker(k)).Violations
}
