package properties

import (
	"sort"
	"strings"
)

// IDRank maps a property ID to its catalogue position for report
// ordering: S.1–S.5 first, then P.1–P.30, then the taint family
// T.1–T.6, then the nondeterminism marker ND, with unknown IDs last
// (ordered lexically among themselves). Reports sorted by IDRank are
// stable across runs regardless of the order verdicts arrive in — the
// invariant the parallel property checker relies on.
func IDRank(id string) int {
	switch {
	case strings.HasPrefix(id, "S."):
		return idNum(id)
	case strings.HasPrefix(id, "P."):
		return 100 + idNum(id)
	case strings.HasPrefix(id, "T."):
		return 500 + idNum(id)
	case id == "ND":
		return 1000
	}
	return 2000
}

func idNum(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

// SortViolations sorts violations into catalogue order (see IDRank),
// breaking ties on the detail text so equal inputs always render
// byte-identical reports, independent of discovery order.
func SortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		ri, rj := IDRank(vs[i].ID), IDRank(vs[j].ID)
		if ri != rj {
			return ri < rj
		}
		if vs[i].ID != vs[j].ID {
			return vs[i].ID < vs[j].ID
		}
		return vs[i].Detail < vs[j].Detail
	})
}
