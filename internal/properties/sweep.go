package properties

import (
	"fmt"
	"sync"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

// SweepOptions configures a catalogue sweep.
type SweepOptions struct {
	// IDs restricts the sweep to the listed property IDs; nil or empty
	// means the whole catalogue. Filtering happens before dispatch:
	// unrequested properties are never built or checked, and they do
	// not appear in the report's Checked list.
	IDs []string
	// Parallel is the number of concurrent property workers; values
	// below 2 run the sweep sequentially. Workers share the model and
	// Kripke structure read-only; each check call constructs its own
	// engine state (BDD manager, explicit-checker memo tables), so the
	// checker passed in must be safe to call concurrently.
	Parallel int
}

// sweepTask is one (property, variant) formula to decide. Tasks are
// enumerated in catalogue order; outcomes are merged back in that same
// order, so the report is deterministic however the checks are
// scheduled.
type sweepTask struct {
	prop    int // Catalogue() index
	id      string
	formula ctl.Formula
}

// CheckAppSpecificOpts sweeps the catalogue under SweepOptions,
// deciding each applicable variant's formula with check. A variant
// failure is contained: the property is marked undecided and the sweep
// continues, so the report still carries verdicts for every other
// property. With o.Parallel > 1 the variants are checked by a bounded
// worker pool; the report (violations, Checked, diagnostics) is
// identical to the sequential sweep's.
func CheckAppSpecificOpts(m *statemodel.Model, check PropertyChecker, o SweepOptions) AppSpecificReport {
	cat := Catalogue()

	var want map[string]bool
	if len(o.IDs) > 0 {
		want = make(map[string]bool, len(o.IDs))
		for _, id := range o.IDs {
			want[id] = true
		}
	}

	// Applicability and formula construction read the shared model;
	// both are cheap, so they run serially up front to produce the
	// dispatch list.
	var tasks []sweepTask
	for pi, prop := range cat {
		if want != nil && !want[prop.ID] {
			continue
		}
		for _, variant := range prop.Variants {
			if !variant.Applicable(m) {
				continue
			}
			f, ok := variant.Build(m)
			if !ok {
				continue
			}
			tasks = append(tasks, sweepTask{prop: pi, id: prop.ID, formula: f})
		}
	}

	outcomes := make([]PropertyOutcome, len(tasks))
	if workers := poolSize(o.Parallel, len(tasks)); workers > 1 {
		var wg sync.WaitGroup
		ch := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range ch {
					outcomes[i] = checkContained(check, tasks[i].id, tasks[i].formula)
				}
			}()
		}
		for i := range tasks {
			ch <- i
		}
		close(ch)
		wg.Wait()
	} else {
		for i, task := range tasks {
			outcomes[i] = checkContained(check, task.id, task.formula)
		}
	}

	return mergeOutcomes(m, cat, tasks, outcomes)
}

// poolSize bounds the worker count by the task count.
func poolSize(parallel, tasks int) int {
	if parallel > tasks {
		return tasks
	}
	return parallel
}

// checkContained runs one check inside a recovery boundary: a panic
// escaping a (mis-implemented) checker undecides only that variant
// instead of tearing down its sibling workers.
func checkContained(check PropertyChecker, id string, f ctl.Formula) (out PropertyOutcome) {
	err := guard.Run("property.dispatch", func() error {
		out = check(id, f)
		return nil
	})
	if err != nil {
		out = PropertyOutcome{
			Diagnostics: []guard.Diagnostic{guard.Diagnose("property.dispatch", id, "", err)},
			Err:         err,
		}
	}
	return out
}

// mergeOutcomes folds per-variant outcomes back into a report in
// catalogue order — the exact aggregation the sequential sweep
// performs, applied to the indexed results.
func mergeOutcomes(m *statemodel.Model, cat []AppProperty, tasks []sweepTask, outcomes []PropertyOutcome) AppSpecificReport {
	var rep AppSpecificReport
	appNames := make([]string, len(m.Apps))
	for i, am := range m.Apps {
		appNames[i] = am.App.Name
	}
	seen := map[string]bool{}
	ti := 0
	for pi, prop := range cat {
		applicable, decided := false, true
		for ti < len(tasks) && tasks[ti].prop == pi {
			out, f := outcomes[ti], tasks[ti].formula
			ti++
			applicable = true
			rep.Diagnostics = append(rep.Diagnostics, out.Diagnostics...)
			if out.Err != nil {
				decided = false
				rep.Incomplete = true
				continue
			}
			if out.Holds {
				continue
			}
			detail := fmt.Sprintf("formula %s fails in %d state(s)", f, out.FailingStates)
			if seen[prop.ID+"|"+detail] {
				continue
			}
			seen[prop.ID+"|"+detail] = true
			rep.Violations = append(rep.Violations, Violation{
				ID: prop.ID, Kind: AppSpecific,
				Description: prop.Description,
				Detail:      detail,
				Apps:        appNames, Counterexample: out.Counterexample,
			})
		}
		if applicable && decided {
			rep.Checked = append(rep.Checked, prop.ID)
		}
	}
	return rep
}
