package properties

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

func modelOf(t *testing.T, srcs ...[2]string) *statemodel.Model {
	t.Helper()
	var apps []*ir.App
	for _, s := range srcs {
		app, err := ir.BuildSource(s[0], s[1])
		if err != nil {
			t.Fatalf("BuildSource(%s): %v", s[0], err)
		}
		apps = append(apps, app)
	}
	m, err := statemodel.Build(apps...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func hasViolation(vs []Violation, id string) bool {
	for _, v := range vs {
		if v.ID == id {
			return true
		}
	}
	return false
}

func ids(vs []Violation) []string {
	var out []string
	for _, v := range vs {
		out = append(out, v.ID)
	}
	return out
}

// --- General properties --------------------------------------------------

func TestS1SamePathConflict(t *testing.T) {
	m := modelOf(t, [2]string{"app4", `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch", h) }
def h(evt) {
    sw.on()
    sw.off()
}
`})
	vs := CheckGeneral(m)
	if !hasViolation(vs, "S.1") {
		t.Errorf("violations = %v", ids(vs))
	}
}

func TestS2RepeatedSamePath(t *testing.T) {
	m := modelOf(t, [2]string{"app3", `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { runIn(30, drain) }
def drain() {
    sw.off()
    sw.off()
}
`})
	vs := CheckGeneral(m)
	if !hasViolation(vs, "S.2") {
		t.Errorf("violations = %v", ids(vs))
	}
}

func TestS3ComplementEventsSameValue(t *testing.T) {
	// O3/O4-style: contact open turns the switch on, contact close
	// also turns it on.
	m := modelOf(t, [2]string{"s3app", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "contact", "capability.contactSensor"
    }
}
def installed() {
    subscribe(contact, "contact.open", hOpen)
    subscribe(contact, "contact.closed", hClose)
}
def hOpen(evt) { sw.on() }
def hClose(evt) { sw.on() }
`})
	vs := CheckGeneral(m)
	if !hasViolation(vs, "S.3") {
		t.Errorf("violations = %v", ids(vs))
	}
	// The complementary pair writing *different* values is fine.
	m2 := modelOf(t, [2]string{"ok", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "contact", "capability.contactSensor"
    }
}
def installed() {
    subscribe(contact, "contact.open", hOpen)
    subscribe(contact, "contact.closed", hClose)
}
def hOpen(evt) { sw.on() }
def hClose(evt) { sw.off() }
`})
	vs2 := CheckGeneral(m2)
	if hasViolation(vs2, "S.3") {
		t.Errorf("false S.3: %v", ids(vs2))
	}
}

func TestS4RaceCondition(t *testing.T) {
	// App7-style: presence turns the switch on; a timer turns it off.
	m := modelOf(t, [2]string{"app7", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "presence", "capability.presenceSensor"
    }
}
def installed() {
    subscribe(presence, "presence.present", hPresent)
    schedule("0 0 0 * * ?", hMidnight)
}
def hPresent(evt) { sw.on() }
def hMidnight() { sw.off() }
`})
	vs := CheckGeneral(m)
	if !hasViolation(vs, "S.4") {
		t.Errorf("violations = %v", ids(vs))
	}
}

func TestS5UnsubscribedEventValue(t *testing.T) {
	// The handler branches on motion "active" but the app only
	// subscribes to motion.inactive.
	m := modelOf(t, [2]string{"app8", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "motion", "capability.motionSensor"
    }
}
def installed() {
    subscribe(motion, "motion.inactive", h)
}
def h(evt) {
    if (evt.value == "active") {
        sw.on()
    }
    if (evt.value == "inactive") {
        sw.off()
    }
}
`})
	vs := CheckGeneral(m)
	if !hasViolation(vs, "S.5") {
		t.Errorf("violations = %v", ids(vs))
	}
}

func TestMultiAppS1ConflictingWrites(t *testing.T) {
	// G.1-style: two apps react to the same event with opposite
	// switch writes.
	a := [2]string{"O3", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "contact", "capability.contactSensor"
    }
}
def installed() { subscribe(contact, "contact.open", h) }
def h(evt) { sw.on() }
`}
	b := [2]string{"O4", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "contact", "capability.contactSensor"
    }
}
def installed() { subscribe(contact, "contact.open", h) }
def h(evt) { sw.off() }
`}
	m := modelOf(t, a, b)
	vs := CheckGeneral(m)
	if !hasViolation(vs, "S.1") {
		t.Errorf("violations = %v", ids(vs))
	}
	// Also flagged as nondeterminism.
	if !hasViolation(vs, "ND") {
		t.Errorf("expected nondeterminism report; got %v", ids(vs))
	}
}

func TestMultiAppS2SameWrite(t *testing.T) {
	a := [2]string{"O8", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "contact", "capability.contactSensor"
    }
}
def installed() { subscribe(contact, "contact.closed", h) }
def h(evt) { sw.on() }
`}
	b := [2]string{"TP12", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "contact", "capability.contactSensor"
    }
}
def installed() { subscribe(contact, "contact.closed", h) }
def h(evt) { sw.on() }
`}
	m := modelOf(t, a, b)
	vs := CheckGeneral(m)
	if !hasViolation(vs, "S.2") {
		t.Errorf("violations = %v", ids(vs))
	}
}

func TestPaperAppsAreClean(t *testing.T) {
	for _, s := range [][2]string{
		{"smoke-alarm", paperapps.SmokeAlarm},
		{"water-leak", paperapps.WaterLeakDetector},
		{"thermostat", paperapps.ThermostatEnergyControl},
	} {
		m := modelOf(t, s)
		vs := CheckGeneral(m)
		for _, v := range vs {
			t.Errorf("%s: unexpected %s: %s", s[0], v.ID, v.Detail)
		}
	}
}

func TestBuggySmokeAlarmS1(t *testing.T) {
	m := modelOf(t, [2]string{"buggy", paperapps.BuggySmokeAlarm})
	vs := CheckGeneral(m)
	if !hasViolation(vs, "S.1") {
		t.Errorf("violations = %v", ids(vs))
	}
}

// --- App-specific properties ---------------------------------------------

func checkApp(t *testing.T, srcs ...[2]string) []Violation {
	t.Helper()
	m := modelOf(t, srcs...)
	k := kripke.FromModel(m)
	return CheckAppSpecific(m, k)
}

func TestP30WaterLeakHolds(t *testing.T) {
	vs := checkApp(t, [2]string{"water-leak", paperapps.WaterLeakDetector})
	if hasViolation(vs, "P.30") || hasViolation(vs, "P.11") {
		t.Errorf("violations = %v", ids(vs))
	}
}

func TestP30ViolatedByBrokenLeakApp(t *testing.T) {
	vs := checkApp(t, [2]string{"broken-leak", `
preferences {
    section("s") {
        input "water_sensor", "capability.waterSensor"
        input "valve_device", "capability.valve"
    }
}
def installed() { subscribe(water_sensor, "water.wet", h) }
def h(evt) {
    valve_device.open()
}
`})
	if !hasViolation(vs, "P.30") {
		t.Errorf("violations = %v", ids(vs))
	}
}

func TestP10BuggySmokeAlarm(t *testing.T) {
	vs := checkApp(t, [2]string{"buggy", paperapps.BuggySmokeAlarm})
	if !hasViolation(vs, "P.10") {
		t.Errorf("violations = %v", ids(vs))
	}
	// The correct app passes.
	vs2 := checkApp(t, [2]string{"smoke-alarm", paperapps.SmokeAlarm})
	if hasViolation(vs2, "P.10") {
		t.Errorf("correct app flagged: %v", ids(vs2))
	}
}

func TestP1DoorUnlockedOnTimer(t *testing.T) {
	// TP8-style: the door is unlocked on a schedule.
	vs := checkApp(t, [2]string{"TP8", `
preferences { section("s") { input "door", "capability.lock" } }
def installed() {
    schedule("0 0 6 * * ?", sunriseHandler)
    schedule("0 0 18 * * ?", sunsetHandler)
}
def sunriseHandler() { door.unlock() }
def sunsetHandler() { door.lock() }
`})
	if !hasViolation(vs, "P.1") {
		t.Errorf("violations = %v", ids(vs))
	}
}

func TestP28MusicWhileSleeping(t *testing.T) {
	vs := checkApp(t, [2]string{"TP5", `
preferences {
    section("s") {
        input "player", "capability.musicPlayer"
        input "sleep", "capability.sleepSensor"
    }
}
def installed() { subscribe(sleep, "sleeping.sleeping", h) }
def h(evt) { player.play() }
`})
	if !hasViolation(vs, "P.28") {
		t.Errorf("violations = %v", ids(vs))
	}
}

func TestP29FloodAlarmInverted(t *testing.T) {
	// TP4: alarm sounds when there is NO water.
	vs := checkApp(t, [2]string{"TP4", `
preferences {
    section("s") {
        input "flood", "capability.waterSensor"
        input "siren", "capability.alarm"
    }
}
def installed() { subscribe(flood, "water.dry", h) }
def h(evt) { siren.siren() }
`})
	if !hasViolation(vs, "P.29") {
		t.Errorf("violations = %v", ids(vs))
	}
}

func TestP12SwitchOnWhenAway(t *testing.T) {
	// TP2: switch turns on when no user is present.
	vs := checkApp(t, [2]string{"TP2", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "presence", "capability.presenceSensor"
    }
}
def installed() { subscribe(presence, "presence.not present", h) }
def h(evt) { sw.on() }
`})
	if !hasViolation(vs, "P.12") {
		t.Errorf("violations = %v", ids(vs))
	}
}

func TestPropertyRequiresAllDevices(t *testing.T) {
	// An app with only a lock (no presence sensor): P.1's first
	// variant is inapplicable, so even an always-unlocked door is not
	// flagged by it (no timer either).
	vs := checkApp(t, [2]string{"lock-only", `
preferences { section("s") { input "door", "capability.lock" } }
def installed() { subscribe(door, "lock.unlocked", h) }
def h(evt) { }
`})
	if hasViolation(vs, "P.1") {
		t.Errorf("P.1 should not apply: %v", ids(vs))
	}
}

func TestCatalogueComplete(t *testing.T) {
	cat := Catalogue()
	if len(cat) != 30 {
		t.Fatalf("catalogue has %d properties, want 30", len(cat))
	}
	seen := map[string]bool{}
	for i, p := range cat {
		want := "P." + itoa(i+1)
		if p.ID != want {
			t.Errorf("property %d has ID %s, want %s", i, p.ID, want)
		}
		if seen[p.ID] {
			t.Errorf("duplicate ID %s", p.ID)
		}
		seen[p.ID] = true
		if p.Description == "" || len(p.Variants) == 0 {
			t.Errorf("%s: missing description or variants", p.ID)
		}
		for _, v := range p.Variants {
			if len(v.Caps) == 0 || v.Build == nil {
				t.Errorf("%s: malformed variant", p.ID)
			}
		}
	}
	if _, ok := PropertyByID("P.17"); !ok {
		t.Error("PropertyByID failed")
	}
	if _, ok := PropertyByID("P.99"); ok {
		t.Error("PropertyByID should fail for unknown")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestViolationString(t *testing.T) {
	v := Violation{ID: "S.1", Kind: General, Description: "desc", Detail: "detail", Apps: []string{"a"}}
	s := v.String()
	if !strings.Contains(s, "S.1") || !strings.Contains(s, "general") {
		t.Errorf("String() = %s", s)
	}
}

func TestS5SwitchStatementHandler(t *testing.T) {
	// The S.5 scan must also see switch-statement cases over
	// evt.value.
	m := modelOf(t, [2]string{"s5switch", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "contact", "capability.contactSensor"
    }
}
def installed() { subscribe(contact, "contact.closed", h) }
def h(evt) {
    switch (evt.value) {
        case "open":
            sw.on()
            break
        case "closed":
            sw.off()
            break
    }
}
`})
	vs := CheckGeneral(m)
	if !hasViolation(vs, "S.5") {
		t.Errorf("violations = %v", ids(vs))
	}
}

// TestCheckGeneralDeterministic: repeated checks produce identical
// reports (ordering matters for reproducible CI output).
func TestCheckGeneralDeterministic(t *testing.T) {
	src := [2]string{"nd", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "motion", "capability.motionSensor"
        input "presence", "capability.presenceSensor"
    }
}
def installed() {
    subscribe(motion, "motion.active", h1)
    subscribe(presence, "presence.present", h2)
    schedule("0 0 1 * * ?", h3)
}
def h1(evt) { sw.on() }
def h2(evt) { sw.on() }
def h3() { sw.off() }
`}
	a := modelOf(t, src)
	b := modelOf(t, src)
	va, vb := CheckGeneral(a), CheckGeneral(b)
	if len(va) != len(vb) {
		t.Fatalf("lengths differ: %d vs %d", len(va), len(vb))
	}
	for i := range va {
		if va[i].String() != vb[i].String() {
			t.Errorf("report %d differs:\n%s\n%s", i, va[i], vb[i])
		}
	}
}
