package properties

import "testing"

// Each case checks a catalogue property in both directions: a
// conforming app passes and a violating app is flagged.

func TestP2MotionLights(t *testing.T) {
	good := [2]string{"good", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "motion", "capability.motionSensor"
    }
}
def installed() { subscribe(motion, "motion.active", h) }
def h(evt) { sw.on() }
`}
	if vs := checkApp(t, good); hasViolation(vs, "P.2") {
		t.Errorf("good: %v", ids(vs))
	}
	bad := [2]string{"bad", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "motion", "capability.motionSensor"
    }
}
def installed() { subscribe(motion, "motion.active", h) }
def h(evt) { sw.off() }
`}
	if vs := checkApp(t, bad); !hasViolation(vs, "P.2") {
		t.Errorf("bad: %v", ids(vs))
	}
}

func TestP4ArrivalLight(t *testing.T) {
	bad := [2]string{"bad", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "who", "capability.presenceSensor"
    }
}
def installed() { subscribe(who, "presence.present", h) }
def h(evt) { sw.off() }
`}
	if vs := checkApp(t, bad); !hasViolation(vs, "P.4") {
		t.Errorf("bad: %v", ids(vs))
	}
}

func TestP6GarageDoor(t *testing.T) {
	good := [2]string{"good", `
preferences {
    section("s") {
        input "garage", "capability.garageDoorControl"
        input "who", "capability.presenceSensor"
    }
}
def installed() {
    subscribe(who, "presence.present", hIn)
    subscribe(who, "presence.not present", hOut)
}
def hIn(evt) { garage.open() }
def hOut(evt) { garage.close() }
`}
	if vs := checkApp(t, good); hasViolation(vs, "P.6") {
		t.Errorf("good: %v", ids(vs))
	}
	bad := [2]string{"bad", `
preferences {
    section("s") {
        input "garage", "capability.garageDoorControl"
        input "who", "capability.presenceSensor"
    }
}
def installed() { subscribe(who, "presence.not present", h) }
def h(evt) { garage.open() }
`}
	if vs := checkApp(t, bad); !hasViolation(vs, "P.6") {
		t.Errorf("bad: %v", ids(vs))
	}
}

func TestP8SleepLights(t *testing.T) {
	bad := [2]string{"bad", `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "bed", "capability.sleepSensor"
    }
}
def installed() { subscribe(bed, "sleeping.sleeping", h) }
def h(evt) { sw.on() }
`}
	if vs := checkApp(t, bad); !hasViolation(vs, "P.8") {
		t.Errorf("bad: %v", ids(vs))
	}
}

func TestP9SecurityDisarm(t *testing.T) {
	bad := [2]string{"bad", `
preferences {
    section("s") {
        input "siren", "capability.alarm"
        input "who", "capability.presenceSensor"
    }
}
def installed() { subscribe(who, "presence.not present", h) }
def h(evt) { siren.off() }
`}
	if vs := checkApp(t, bad); !hasViolation(vs, "P.9") {
		t.Errorf("bad: %v", ids(vs))
	}
}

func TestP17HeaterAndAC(t *testing.T) {
	bad := [2]string{"bad", `
preferences {
    section("s") {
        input "heater", "capability.switch"
        input "ac", "capability.fanControl"
    }
}
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    heater.on()
    ac.fanOn()
}
`}
	if vs := checkApp(t, bad); !hasViolation(vs, "P.17") {
		t.Errorf("bad: %v", ids(vs))
	}
	good := [2]string{"good", `
preferences {
    section("s") {
        input "heater", "capability.switch"
        input "ac", "capability.fanControl"
    }
}
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    heater.off()
    ac.fanOn()
}
`}
	if vs := checkApp(t, good); hasViolation(vs, "P.17") {
		t.Errorf("good: %v", ids(vs))
	}
}

func TestP20CameraTrap(t *testing.T) {
	good := [2]string{"good", `
preferences {
    section("s") {
        input "cam", "capability.imageCapture"
        input "motion", "capability.motionSensor"
        input "entry", "capability.contactSensor"
    }
}
def installed() { subscribe(motion, "motion.active", h) }
def h(evt) { cam.take() }
`}
	if vs := checkApp(t, good); hasViolation(vs, "P.20") {
		t.Errorf("good: %v", ids(vs))
	}
	bad := [2]string{"bad", `
preferences {
    section("s") {
        input "cam", "capability.imageCapture"
        input "motion", "capability.motionSensor"
        input "entry", "capability.contactSensor"
    }
}
def installed() { subscribe(motion, "motion.active", h) }
def h(evt) { log.debug "motion but no snapshot" }
`}
	if vs := checkApp(t, bad); !hasViolation(vs, "P.20") {
		t.Errorf("bad: %v", ids(vs))
	}
}

func TestP24WindowHeater(t *testing.T) {
	bad := [2]string{"bad", `
preferences {
    section("s") {
        input "shade", "capability.windowShade"
        input "heater", "capability.switch"
    }
}
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    shade.open()
    heater.on()
}
`}
	if vs := checkApp(t, bad); !hasViolation(vs, "P.24") {
		t.Errorf("bad: %v", ids(vs))
	}
}

func TestP26DoorOpenTooLong(t *testing.T) {
	good := [2]string{"good", `
preferences {
    section("s") {
        input "siren", "capability.alarm"
        input "door", "capability.contactSensor"
    }
}
def installed() { subscribe(door, "contact.open", h) }
def h(evt) { runIn(120, checkHandler) }
def checkHandler() {
    if (door.currentValue("contact") == "open") {
        siren.siren()
    }
}
`}
	if vs := checkApp(t, good); hasViolation(vs, "P.26") {
		t.Errorf("good: %v", ids(vs))
	}
	bad := [2]string{"bad", `
preferences {
    section("s") {
        input "siren", "capability.alarm"
        input "door", "capability.contactSensor"
    }
}
def installed() { subscribe(door, "contact.open", h) }
def h(evt) { runIn(120, checkHandler) }
def checkHandler() {
    log.debug "forgot to sound the alarm"
}
`}
	if vs := checkApp(t, bad); !hasViolation(vs, "P.26") {
		t.Errorf("bad: %v", ids(vs))
	}
}

func TestP27ModeSync(t *testing.T) {
	good := [2]string{"good", `
preferences { section("s") { input "who", "capability.presenceSensor" } }
def installed() {
    subscribe(who, "presence.present", hIn)
    subscribe(who, "presence.not present", hOut)
}
def hIn(evt) { setLocationMode("home") }
def hOut(evt) { setLocationMode("away") }
`}
	if vs := checkApp(t, good); hasViolation(vs, "P.27") {
		t.Errorf("good: %v", ids(vs))
	}
	bad := [2]string{"bad", `
preferences { section("s") { input "who", "capability.presenceSensor" } }
def installed() {
    subscribe(who, "presence.present", hIn)
    subscribe(who, "presence.not present", hOut)
}
def hIn(evt) { setLocationMode("away") }
def hOut(evt) { setLocationMode("home") }
`}
	if vs := checkApp(t, bad); !hasViolation(vs, "P.27") {
		t.Errorf("bad: %v", ids(vs))
	}
}
