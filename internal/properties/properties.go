// Package properties implements Soteria's property system (paper §4.3,
// Appendix B): the five general properties S.1–S.5 — structural
// constraints on states and transitions that must hold regardless of
// app semantics — and the thirty application-specific properties
// P.1–P.30, expressed as CTL templates instantiated on an app's (or
// app group's) state model. An app is checked against an app-specific
// property only when it grants all the devices the property names.
package properties

import (
	"fmt"
	"sort"
	"strings"

	"github.com/soteria-analysis/soteria/internal/groovy"
	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/pathcond"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

// Kind classifies a violation's origin.
type Kind int

// Violation kinds.
const (
	// General marks S.1–S.5 violations.
	General Kind = iota
	// AppSpecific marks P.1–P.30 violations.
	AppSpecific
	// Nondeterminism marks nondeterministic state models (§4.2).
	Nondeterminism
	// Taint marks T.1–T.6 sensitive-data-flow violations (the
	// SainT-style source→sink family; internal/taint).
	Taint
)

func (k Kind) String() string {
	switch k {
	case General:
		return "general"
	case AppSpecific:
		return "app-specific"
	case Nondeterminism:
		return "nondeterminism"
	case Taint:
		return "taint"
	}
	return "unknown"
}

// KindFromString is the inverse of Kind.String, for decoding
// persisted records; unknown names map to General.
func KindFromString(s string) Kind {
	switch s {
	case "app-specific":
		return AppSpecific
	case "nondeterminism":
		return Nondeterminism
	case "taint":
		return Taint
	}
	return General
}

// Violation is one reported property violation.
type Violation struct {
	ID          string // "S.1", "P.30", "ND"
	Kind        Kind
	Description string
	// Detail explains the specific instance (devices, events, apps).
	Detail string
	// Apps names the contributing apps.
	Apps []string
	// Counterexample, when non-empty, is a rendered model trace.
	Counterexample string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s [%s]: %s — %s (apps: %s)",
		v.ID, v.Kind, v.Description, v.Detail, strings.Join(v.Apps, ", "))
}

// generalDescriptions are the Appendix B Table 1 texts (abridged).
var generalDescriptions = map[string]string{
	"S.1": "an event handler must not change a device attribute to conflicting values on the same control-flow path",
	"S.2": "an event handler must not change a device attribute to the same value multiple times",
	"S.3": "handlers of complement events must not change a device attribute to the same value",
	"S.4": "non-complement event handlers must not change an attribute to conflicting values (race condition)",
	"S.5": "an event handled by a handler's logic must be subscribed by the app",
}

// write is one attribute assignment of a path, in canonical
// capability.attribute form.
type write struct {
	key   string
	value string
}

// pathInfo is the per-path digest the general checks operate on.
type pathInfo struct {
	app     int
	appName string
	handler string
	kind    ir.EventKind
	trigKey string   // triggering variable key; "app.touch"/"timer.time" for abstract
	values  []string // possible event values; nil means "any value"
	writes  []write
	guard   pathcond.Cond
}

// eventOverlap reports whether two paths can be triggered by the same
// event occurrence.
func eventOverlap(a, b *pathInfo) bool {
	if a.trigKey != b.trigKey || a.kind != b.kind {
		return false
	}
	if a.values == nil || b.values == nil {
		return true
	}
	for _, x := range a.values {
		for _, y := range b.values {
			if x == y {
				return true
			}
		}
	}
	return false
}

// digestPaths flattens a model's per-app symbolic paths.
func digestPaths(m *statemodel.Model) []*pathInfo {
	var out []*pathInfo
	for ai, am := range m.Apps {
		for _, r := range am.Results {
			sub := r.Entry.Sub
			trig, values := triggerOf(m, am.App, sub)
			for _, p := range r.Paths {
				pi := &pathInfo{
					app: ai, appName: am.App.Name, handler: sub.Handler,
					kind: sub.Kind, trigKey: trig, guard: p.Guard,
				}
				pi.values = refineValues(values, p.Guard)
				for _, a := range p.Actions {
					pi.writes = append(pi.writes, write{key: a.Cap + "." + a.Attr, value: a.Value})
				}
				out = append(out, pi)
			}
		}
	}
	return out
}

func triggerOf(m *statemodel.Model, app *ir.App, sub ir.Subscription) (string, []string) {
	switch sub.Kind {
	case ir.AppTouchEvent:
		// Per-app: one app's icon tap does not trigger another app.
		return "app.touch", []string{app.Name}
	case ir.TimerEvent:
		// Per-schedule: distinct scheduled handlers are distinct
		// events and never race with each other.
		if sub.Value != "" {
			return "timer.time", []string{sub.Value}
		}
		return "timer.time", []string{"fired"}
	case ir.ModeEvent:
		if sub.Value != "" {
			return "location.mode", []string{sub.Value}
		}
		return "location.mode", nil
	}
	p, ok := app.PermissionByHandle(sub.Handle)
	if !ok || p.Cap == nil {
		return "", nil
	}
	attr := sub.Attr
	if _, has := p.Cap.Attribute(attr); !has {
		if pa := p.Cap.PrimaryAttribute(); pa != nil {
			attr = pa.Name
		}
	}
	key := p.Cap.Name + "." + attr
	if sub.Value != "" {
		return key, []string{sub.Value}
	}
	return key, nil
}

// refineValues narrows the event-value set using evt.value equality
// atoms in the path guard.
func refineValues(values []string, g pathcond.Cond) []string {
	var eq []string
	for _, a := range g.Atoms {
		if a.Var == "evt.value" && a.Op == pathcond.EQ && !a.IsNum && !a.IsSym() {
			eq = append(eq, a.Str)
		}
	}
	if len(eq) == 0 {
		return values
	}
	if values == nil {
		return eq
	}
	var out []string
	for _, v := range values {
		for _, e := range eq {
			if v == e {
				out = append(out, v)
			}
		}
	}
	if out == nil {
		return eq // contradictory subscription/guard; keep guard's view
	}
	return out
}

// CheckGeneral runs S.1–S.5 and the nondeterminism check on a model.
func CheckGeneral(m *statemodel.Model) []Violation {
	return CheckGeneralBudget(m, nil)
}

// CheckGeneralBudget is CheckGeneral under a resource budget: the
// pairwise path comparison (the quadratic part of the general checks)
// cooperatively checks the wall-clock deadline. A nil budget disables
// all checks.
func CheckGeneralBudget(m *statemodel.Model, bud *guard.Budget) []Violation {
	paths := digestPaths(m)
	var out []Violation
	seen := map[string]bool{}
	report := func(id, detail string, apps ...string) {
		sort.Strings(apps)
		key := id + "|" + detail
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Violation{
			ID: id, Kind: General, Description: generalDescriptions[id],
			Detail: detail, Apps: dedup(apps),
		})
	}

	// S.1 (same path) and S.2 (same path).
	for _, p := range paths {
		byKey := map[string][]string{}
		for _, w := range p.writes {
			byKey[w.key] = append(byKey[w.key], w.value)
		}
		for _, key := range sortedMapKeys(byKey) {
			vals := byKey[key]
			valSet := map[string]int{}
			for _, v := range vals {
				valSet[v]++
			}
			if len(valSet) > 1 {
				report("S.1", fmt.Sprintf("%s set to %s on one path of %s", key, strings.Join(vals, " then "), p.handler), p.appName)
			}
			for v, n := range valSet {
				if n > 1 {
					report("S.2", fmt.Sprintf("%s set to %s %d times on one path of %s", key, v, n, p.handler), p.appName)
				}
			}
		}
	}

	// Pairwise checks: S.1 (same event, conflicting writes across
	// handlers/apps), S.2 (same event, same write repeated across
	// handlers), S.3 (complement events, same write), S.4
	// (non-complement events, conflicting writes).
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			bud.Tick("properties.general")
			a, b := paths[i], paths[j]
			samePath := a.app == b.app && a.handler == b.handler
			jointly := pathcond.Feasible(a.guard.And(b.guard))
			for _, wa := range a.writes {
				for _, wb := range b.writes {
					if wa.key != wb.key {
						continue
					}
					switch {
					case eventOverlap(a, b) && !samePath:
						if !jointly {
							continue
						}
						if wa.value != wb.value {
							report("S.1",
								fmt.Sprintf("event %s makes %s set %s to %s while %s sets it to %s",
									eventDesc(a), handlerDesc(a), wa.key, wa.value, handlerDesc(b), wb.value),
								a.appName, b.appName)
						} else {
							report("S.2",
								fmt.Sprintf("event %s makes both %s and %s set %s to %s",
									eventDesc(a), handlerDesc(a), handlerDesc(b), wa.key, wa.value),
								a.appName, b.appName)
						}
					case complementEvents(a, b):
						if wa.value == wb.value {
							report("S.3",
								fmt.Sprintf("complement events %s and %s both set %s to %s",
									eventDesc(a), eventDesc(b), wa.key, wa.value),
								a.appName, b.appName)
						}
					case a.trigKey != b.trigKey && a.trigKey != "" && b.trigKey != "":
						if wa.value != wb.value {
							report("S.4",
								fmt.Sprintf("independent events %s and %s race on %s (%s vs %s)",
									eventDesc(a), eventDesc(b), wa.key, wa.value, wb.value),
								a.appName, b.appName)
						}
					}
				}
			}
		}
	}

	// S.5: the handler's logic has a case for an event value the app
	// never subscribes to. This inspects the handler source directly —
	// the unsubscribed branch is infeasible under the seeded
	// subscription constraint and thus absent from the path digests.
	for _, am := range m.Apps {
		subsByHandler := map[string][]ir.Subscription{}
		for _, s := range am.App.Subscriptions {
			subsByHandler[s.Handler] = append(subsByHandler[s.Handler], s)
		}
		checked := map[string]bool{}
		for _, r := range am.Results {
			h := r.Entry.Sub.Handler
			if checked[h] {
				continue
			}
			checked[h] = true
			subs := subsByHandler[h]
			allValues := false
			valueSet := map[string]bool{}
			for _, s := range subs {
				if s.Value == "" {
					allValues = true
				}
				valueSet[s.Value] = true
			}
			if allValues {
				continue
			}
			for _, v := range handledEventValues(r.Entry.Handler) {
				if !valueSet[v] {
					report("S.5",
						fmt.Sprintf("handler %s handles event value %q but the app does not subscribe to it", h, v),
						am.App.Name)
				}
			}
		}
	}

	// Nondeterminism reports.
	for _, nd := range m.Nondet {
		apps := []string{m.Apps[nd.AppA].App.Name}
		if nd.AppB != nd.AppA {
			apps = append(apps, m.Apps[nd.AppB].App.Name)
		}
		detail := fmt.Sprintf("state %s on event %s reaches both %s and %s",
			m.StateLabel(nd.State), nd.Event.String(), m.StateLabel(nd.ToA), m.StateLabel(nd.ToB))
		key := "ND|" + detail
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Violation{
			ID: "ND", Kind: Nondeterminism,
			Description: "nondeterministic state model",
			Detail:      detail, Apps: dedup(apps),
		})
	}
	return out
}

func eventDesc(p *pathInfo) string {
	if p.values == nil {
		return p.trigKey
	}
	return p.trigKey + "." + strings.Join(p.values, "/")
}

func handlerDesc(p *pathInfo) string {
	return p.appName + ":" + p.handler
}

// complementEvents reports whether two paths are triggered by
// complementary values of the same attribute (motion active/inactive,
// contact open/closed, ...).
func complementEvents(a, b *pathInfo) bool {
	if a.trigKey != b.trigKey || a.trigKey == "" {
		return false
	}
	if len(a.values) != 1 || len(b.values) != 1 {
		return false
	}
	i := strings.LastIndex(a.trigKey, ".")
	capName, attrName := a.trigKey[:i], a.trigKey[i+1:]
	c, ok := capLookup(capName)
	if !ok {
		return false
	}
	attr, ok := c.Attribute(attrName)
	if !ok {
		return false
	}
	comp, ok := attr.Complement(a.values[0])
	return ok && comp == b.values[0]
}

// handledEventValues scans a handler body for comparisons of the event
// parameter's value against string literals (evt.value == "active",
// switch cases) and returns the distinct values.
func handledEventValues(h *groovy.MethodDecl) []string {
	if h == nil || len(h.Params) == 0 {
		return nil
	}
	evtParam := h.Params[0]
	isEvtValue := func(e groovy.Expr) bool {
		pe, ok := e.(*groovy.PropExpr)
		if !ok || pe.Name != "value" {
			return false
		}
		id, ok := pe.Recv.(*groovy.Ident)
		return ok && id.Name == evtParam
	}
	set := map[string]bool{}
	var order []string
	add := func(v string) {
		if !set[v] {
			set[v] = true
			order = append(order, v)
		}
	}
	groovy.Walk(h, func(n groovy.Node) bool {
		switch x := n.(type) {
		case *groovy.BinaryExpr:
			if x.Op != groovy.EQ {
				return true
			}
			if isEvtValue(x.L) {
				if s, ok := groovy.StringValue(x.R); ok {
					add(s)
				}
			} else if isEvtValue(x.R) {
				if s, ok := groovy.StringValue(x.L); ok {
					add(s)
				}
			}
		case *groovy.SwitchStmt:
			if isEvtValue(x.Tag) {
				for _, c := range x.Cases {
					if c.Value != nil {
						if s, ok := groovy.StringValue(c.Value); ok {
							add(s)
						}
					}
				}
			}
		}
		return true
	})
	return order
}

func dedup(ss []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func sortedMapKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
