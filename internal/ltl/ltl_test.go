package ltl

import (
	"math/rand"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/modelcheck"
)

func TestParseAndPrint(t *testing.T) {
	cases := []string{
		`G "p"`, `F "q"`, `X "p"`, `"p" U "q"`, `"p" R "q"`,
		`G ("p" -> F "q")`, `!(F "p")`, `true`, `false`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	for _, bad := range []string{``, `(`, `"unterminated`, `U "p"`, `G`} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestNotNNF(t *testing.T) {
	// ¬G p = F ¬p = true U ¬p.
	f := Not(G(Prop{Name: "p"}))
	u, ok := f.(Until)
	if !ok {
		t.Fatalf("¬G p = %T", f)
	}
	if _, ok := u.R.(NProp); !ok {
		t.Errorf("¬G p = %s", f)
	}
	// Double negation restores the proposition.
	p := Prop{Name: "p"}
	if Not(Not(p)).String() != p.String() {
		t.Error("double negation")
	}
}

func chain(n int, labels map[int][]string) *kripke.Structure {
	k := kripke.New(n)
	for i := 0; i < n-1; i++ {
		k.AddEdge(i, i+1, "")
	}
	k.AddEdge(n-1, n-1, "")
	for s, ps := range labels {
		for _, p := range ps {
			k.Labels[s][p] = true
		}
	}
	return k
}

func TestGloballyOnChain(t *testing.T) {
	k := chain(3, map[int][]string{0: {"p"}, 1: {"p"}, 2: {"p"}})
	k.Init = []int{0}
	if r := Check(k, MustParse(`G "p"`)); !r.Holds {
		t.Errorf("G p should hold; cex = %v", r.Counterexample)
	}
	k2 := chain(3, map[int][]string{0: {"p"}, 2: {"p"}})
	k2.Init = []int{0}
	r := Check(k2, MustParse(`G "p"`))
	if r.Holds {
		t.Error("G p should fail")
	}
	if len(r.Counterexample) == 0 || r.Loop < 0 {
		t.Errorf("cex = %v loop=%d", r.Counterexample, r.Loop)
	}
}

func TestEventually(t *testing.T) {
	k := chain(3, map[int][]string{2: {"goal"}})
	k.Init = []int{0}
	if r := Check(k, MustParse(`F "goal"`)); !r.Holds {
		t.Error("F goal should hold on the chain")
	}
	// Branch to a goal-free loop: F goal fails.
	k2 := kripke.New(3)
	k2.Init = []int{0}
	k2.AddEdge(0, 1, "")
	k2.AddEdge(0, 2, "")
	k2.AddEdge(1, 1, "")
	k2.AddEdge(2, 2, "")
	k2.Labels[1]["goal"] = true
	r := Check(k2, MustParse(`F "goal"`))
	if r.Holds {
		t.Error("F goal should fail via the 0->2 path")
	}
	// The lasso must avoid goal forever.
	for _, s := range r.Counterexample {
		if k2.HasProp(s, "goal") {
			t.Errorf("counterexample visits goal: %v", r.Counterexample)
		}
	}
}

func TestNextSemantics(t *testing.T) {
	k := kripke.New(3)
	k.Init = []int{0}
	k.AddEdge(0, 1, "")
	k.AddEdge(0, 2, "")
	k.AddEdge(1, 1, "")
	k.AddEdge(2, 2, "")
	k.Labels[1]["p"] = true
	r := Check(k, MustParse(`X "p"`))
	if r.Holds {
		t.Error("X p should fail via successor 2")
	}
	k.Labels[2]["p"] = true
	if r := Check(k, MustParse(`X "p"`)); !r.Holds {
		t.Error("X p should hold when all successors satisfy p")
	}
}

func TestResponseProperty(t *testing.T) {
	// 0(req) -> 1 -> 2(ack) -> 0 : every request is eventually acked.
	k := kripke.New(3)
	k.Init = []int{0}
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 2, "")
	k.AddEdge(2, 0, "")
	k.Labels[0]["req"] = true
	k.Labels[2]["ack"] = true
	if r := Check(k, MustParse(`G ("req" -> F "ack")`)); !r.Holds {
		t.Errorf("response property should hold; cex=%v", r.Counterexample)
	}
	// Add an escape to an ack-free loop after a request.
	k.AddEdge(0, 0, "")
	r := Check(k, MustParse(`G ("req" -> F "ack")`))
	if r.Holds {
		t.Error("self-looping on req forever violates the response property")
	}
}

func TestUntilRelease(t *testing.T) {
	k := chain(3, map[int][]string{0: {"a"}, 1: {"a"}, 2: {"b"}})
	k.Init = []int{0}
	if r := Check(k, MustParse(`"a" U "b"`)); !r.Holds {
		t.Error("a U b should hold")
	}
	// Release: b R a means a holds up to and including the first b.
	k2 := chain(3, map[int][]string{0: {"a"}, 1: {"a", "b"}, 2: {"a"}})
	k2.Init = []int{0}
	if r := Check(k2, MustParse(`"b" R "a"`)); !r.Holds {
		t.Errorf("b R a should hold; cex=%v", r.Counterexample)
	}
}

// TestAgreesWithCTLOnCommonFragment cross-checks the LTL engine
// against the explicit CTL engine on the fragment where the logics
// coincide for universal path quantification.
func TestAgreesWithCTLOnCommonFragment(t *testing.T) {
	pairs := []struct {
		ltl string
		ctl string
	}{
		{`G "p"`, `AG "p"`},
		{`F "p"`, `AF "p"`},
		{`X "p"`, `AX "p"`},
		{`"p" U "q"`, `A["p" U "q"]`},
		{`G ("p" -> F "q")`, `AG ("p" -> AF "q")`},
		{`G (F "q")`, `AG (AF "q")`},
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(9)
		k := kripke.New(n)
		for s := 0; s < n; s++ {
			m := 1 + rng.Intn(2)
			for j := 0; j < m; j++ {
				k.AddEdge(s, rng.Intn(n), "")
			}
			if rng.Intn(2) == 0 {
				k.Labels[s]["p"] = true
			}
			if rng.Intn(3) == 0 {
				k.Labels[s]["q"] = true
			}
		}
		// Restrict to a single initial state to keep the comparison
		// crisp.
		k.Init = []int{rng.Intn(n)}
		for _, pair := range pairs {
			lr := Check(k, MustParse(pair.ltl))
			cr := modelcheck.Check(k, ctl.MustParse(pair.ctl))
			if lr.Holds != cr.Holds {
				t.Fatalf("trial %d: %s=%t but %s=%t", trial, pair.ltl, lr.Holds, pair.ctl, cr.Holds)
			}
		}
	}
}

// TestCounterexampleLassoValid: counterexample paths must be real
// paths with a valid loop-back edge.
func TestCounterexampleLassoValid(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		k := kripke.New(n)
		for s := 0; s < n; s++ {
			k.AddEdge(s, rng.Intn(n), "")
			if rng.Intn(2) == 0 {
				k.Labels[s]["p"] = true
			}
		}
		k.Init = []int{0}
		r := Check(k, MustParse(`G "p"`))
		if r.Holds {
			continue
		}
		path, loop := r.Counterexample, r.Loop
		if len(path) == 0 || loop < 0 || loop >= len(path) {
			t.Fatalf("trial %d: bad lasso %v loop=%d", trial, path, loop)
		}
		for i := 0; i+1 < len(path); i++ {
			if !hasEdge(k, path[i], path[i+1]) {
				t.Fatalf("trial %d: invalid step %d in %v", trial, i, path)
			}
		}
		if !hasEdge(k, path[len(path)-1], path[loop]) {
			t.Fatalf("trial %d: loop-back edge missing in %v loop=%d", trial, path, loop)
		}
	}
}

func hasEdge(k *kripke.Structure, a, b int) bool {
	for _, t := range k.Succs[a] {
		if t == b {
			return true
		}
	}
	return false
}

// TestLTLDistinguishesFG: A(FG p) is strictly weaker than AF AG p; on
// the classic example the LTL property holds while the CTL one fails.
func TestLTLDistinguishesFG(t *testing.T) {
	// s0 -> s0 (p), s0 -> s1 (¬p), s1 -> s2 (p), s2 -> s2 (p).
	k := kripke.New(3)
	k.Init = []int{0}
	k.AddEdge(0, 0, "")
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 2, "")
	k.AddEdge(2, 2, "")
	k.Labels[0]["p"] = true
	k.Labels[2]["p"] = true
	lr := Check(k, MustParse(`F (G "p")`))
	if !lr.Holds {
		t.Errorf("FG p should hold on every path; cex=%v", lr.Counterexample)
	}
	cr := modelcheck.Check(k, ctl.MustParse(`AF (AG "p")`))
	if cr.Holds {
		t.Error("AF AG p should fail (branching-time is stronger here)")
	}
}
