package ltl_test

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/conformance"
	"github.com/soteria-analysis/soteria/internal/ltl"
)

// FuzzParse drives the LTL parser with arbitrary input. The
// invariants are totality (no panic, even on deeply nested input —
// the depth limit must kick in before the stack does) and that any
// accepted formula round-trips through its (negation-normal-form)
// rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"true", "false", "\"valve.valve=closed\"",
		// LTL renderings of the catalogue's recurring shapes: "after
		// the event, eventually/always the actuator state".
		"G(\"ev:smoke.smoke.detected\" -> F \"alarm.alarm=siren\")",
		"G(\"ev:waterSensor.water.wet\" -> X \"valve.valve=closed\")",
		"G(\"location.mode=Away\" -> G !\"switch.switch=on\")",
		"F \"heater.switch=on\" U \"location.mode=Home\"",
		"(\"a\" U \"b\") R (\"c\" | !\"d\")",
		"X X X \"p\"",
		"G F \"p\" -> F G \"q\"",
		"((((\"p\"))))",
		"G(", "\"a\" U", "\"unterminated",
		strings.Repeat("!", 2000) + "\"p\"",
		strings.Repeat("(", 2000) + "\"p\"" + strings.Repeat(")", 2000),
		strings.Repeat("X ", 1500) + "\"p\"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Seeded random formulas from the conformance generator — every LTL
	// constructor over device-style atoms.
	for _, s := range conformance.GenLTLFormulaStrings(1, 64) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		f1, err := ltl.Parse(src)
		if err != nil {
			return
		}
		f2, err := ltl.Parse(f1.String())
		if err != nil {
			t.Fatalf("rendering of accepted formula does not reparse: %q: %v", f1.String(), err)
		}
		if f1.String() != f2.String() {
			t.Fatalf("round-trip mismatch: %q vs %q", f1.String(), f2.String())
		}
	})
}
