package ltl

import (
	"sort"

	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/kripke"
)

// Result of an LTL check: the property is interpreted universally over
// all paths from the structure's initial states (A f).
type Result struct {
	Formula Formula
	Holds   bool
	// Counterexample is a lasso over Kripke states when the property
	// fails; Loop is the index the path loops back to.
	Counterexample []int
	Loop           int
}

// Check decides whether every path from every initial state of k
// satisfies f, by emptiness of k × GBA(¬f).
func Check(k *kripke.Structure, f Formula) *Result {
	return CheckBudget(k, f, nil)
}

// CheckBudget is Check under a resource budget: tableau construction
// and the product search cooperatively check the wall-clock deadline,
// and reachable product states are charged against MaxStates.
// Exhaustion panics with a *guard.BudgetError for the enclosing
// recovery boundary; a nil budget disables all checks.
func CheckBudget(k *kripke.Structure, f Formula, b *guard.Budget) *Result {
	aut := build(Not(f), b)
	prod := newProduct(k, aut)
	prod.b = b
	path, loop := prod.findAcceptingLasso()
	res := &Result{Formula: f, Holds: path == nil, Loop: -1}
	if path != nil {
		res.Counterexample = path
		res.Loop = loop
	}
	return res
}

// ---------------------------------------------------------------------------
// GPVW tableau construction

type gbaNode struct {
	id       int
	incoming map[int]bool // node IDs; -1 denotes the initial marker
	new      []Formula
	old      []Formula
	next     []Formula
}

type automaton struct {
	nodes []*gbaNode
	// accept[i] is the set of node IDs in the i-th acceptance set,
	// one per Until subformula.
	accept []map[int]bool
	untils []Until
}

const initMarker = -1

func key(fs []Formula) string {
	ss := make([]string, len(fs))
	for i, f := range fs {
		ss[i] = f.String()
	}
	sort.Strings(ss)
	return "{" + joinStrings(ss) + "}"
}

func joinStrings(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

func containsF(fs []Formula, f Formula) bool {
	s := f.String()
	for _, g := range fs {
		if g.String() == s {
			return true
		}
	}
	return false
}

func addF(fs []Formula, f Formula) []Formula {
	if containsF(fs, f) {
		return fs
	}
	return append(append([]Formula{}, fs...), f)
}

type builder struct {
	nodes  []*gbaNode
	byKey  map[string]*gbaNode
	nextID int
	budget *guard.Budget
}

// build constructs the generalized Büchi automaton of f (in NNF).
func build(f Formula, budget *guard.Budget) *automaton {
	b := &builder{byKey: map[string]*gbaNode{}, budget: budget}
	start := &gbaNode{
		id:       b.fresh(),
		incoming: map[int]bool{initMarker: true},
		new:      []Formula{f},
	}
	b.expand(start)

	a := &automaton{nodes: b.nodes}
	collectUntils(f, &a.untils)
	for _, u := range a.untils {
		set := map[int]bool{}
		for _, n := range b.nodes {
			// Accepting for f1 U f2: the node does not owe the until,
			// or has already satisfied f2.
			if !containsF(n.old, u) || containsF(n.old, u.R) {
				set[n.id] = true
			}
		}
		a.accept = append(a.accept, set)
	}
	return a
}

func (b *builder) fresh() int {
	b.nextID++
	return b.nextID
}

func collectUntils(f Formula, out *[]Until) {
	switch x := f.(type) {
	case Until:
		if !untilSeen(*out, x) {
			*out = append(*out, x)
		}
		collectUntils(x.L, out)
		collectUntils(x.R, out)
	case Release:
		collectUntils(x.L, out)
		collectUntils(x.R, out)
	case And:
		collectUntils(x.L, out)
		collectUntils(x.R, out)
	case Or:
		collectUntils(x.L, out)
		collectUntils(x.R, out)
	case Next:
		collectUntils(x.X, out)
	}
}

func untilSeen(us []Until, u Until) bool {
	for _, x := range us {
		if x.String() == u.String() {
			return true
		}
	}
	return false
}

// expand is the GPVW node-splitting procedure.
func (b *builder) expand(q *gbaNode) {
	b.budget.Tick("ltl.tableau")
	if len(q.new) == 0 {
		k := key(q.old) + "|" + key(q.next)
		if r, ok := b.byKey[k]; ok {
			for in := range q.incoming {
				r.incoming[in] = true
			}
			return
		}
		b.byKey[k] = q
		b.nodes = append(b.nodes, q)
		succ := &gbaNode{
			id:       b.fresh(),
			incoming: map[int]bool{q.id: true},
			new:      append([]Formula{}, q.next...),
		}
		b.expand(succ)
		return
	}
	f := q.new[len(q.new)-1]
	q.new = q.new[:len(q.new)-1]
	switch x := f.(type) {
	case FalseF:
		return // contradiction: discard
	case TrueF:
		b.expand(q)
	case Prop:
		if containsF(q.old, NProp{Name: x.Name}) {
			return
		}
		q.old = addF(q.old, f)
		b.expand(q)
	case NProp:
		if containsF(q.old, Prop{Name: x.Name}) {
			return
		}
		q.old = addF(q.old, f)
		b.expand(q)
	case And:
		q.new = addF(addF(q.new, x.L), x.R)
		q.old = addF(q.old, f)
		b.expand(q)
	case Or:
		q1 := cloneNode(q, b.fresh())
		q1.new = addF(q1.new, x.L)
		q1.old = addF(q1.old, f)
		q2 := cloneNode(q, b.fresh())
		q2.new = addF(q2.new, x.R)
		q2.old = addF(q2.old, f)
		b.expand(q1)
		b.expand(q2)
	case Next:
		q.old = addF(q.old, f)
		q.next = addF(q.next, x.X)
		b.expand(q)
	case Until:
		q1 := cloneNode(q, b.fresh())
		q1.new = addF(q1.new, x.L)
		q1.next = addF(q1.next, f)
		q1.old = addF(q1.old, f)
		q2 := cloneNode(q, b.fresh())
		q2.new = addF(q2.new, x.R)
		q2.old = addF(q2.old, f)
		b.expand(q1)
		b.expand(q2)
	case Release:
		q1 := cloneNode(q, b.fresh())
		q1.new = addF(q1.new, x.R)
		q1.next = addF(q1.next, f)
		q1.old = addF(q1.old, f)
		q2 := cloneNode(q, b.fresh())
		q2.new = addF(addF(q2.new, x.L), x.R)
		q2.old = addF(q2.old, f)
		b.expand(q1)
		b.expand(q2)
	}
}

func cloneNode(q *gbaNode, id int) *gbaNode {
	inc := map[int]bool{}
	for k := range q.incoming {
		inc[k] = true
	}
	return &gbaNode{
		id:       id,
		incoming: inc,
		new:      append([]Formula{}, q.new...),
		old:      append([]Formula{}, q.old...),
		next:     append([]Formula{}, q.next...),
	}
}

// compatible reports whether Kripke state s satisfies the node's
// propositional obligations.
func compatible(k *kripke.Structure, s int, n *gbaNode) bool {
	for _, f := range n.old {
		switch x := f.(type) {
		case Prop:
			if !k.HasProp(s, x.Name) {
				return false
			}
		case NProp:
			if k.HasProp(s, x.Name) {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Product and emptiness

type product struct {
	k *kripke.Structure
	a *automaton
	// succsOf maps automaton node id -> successor nodes.
	succsOf map[int][]*gbaNode
	inits   []*gbaNode
	b       *guard.Budget
}

type pstate struct {
	s int // kripke state
	q int // automaton node id
}

func newProduct(k *kripke.Structure, a *automaton) *product {
	p := &product{k: k, a: a, succsOf: map[int][]*gbaNode{}}
	for _, n := range a.nodes {
		for in := range n.incoming {
			if in == initMarker {
				p.inits = append(p.inits, n)
			} else {
				p.succsOf[in] = append(p.succsOf[in], n)
			}
		}
	}
	return p
}

// successors of a product state.
func (p *product) succs(ps pstate) []pstate {
	var out []pstate
	for _, t := range p.k.Succs[ps.s] {
		for _, qn := range p.succsOf[ps.q] {
			if compatible(p.k, t, qn) {
				out = append(out, pstate{s: t, q: qn.id})
			}
		}
	}
	return out
}

// findAcceptingLasso searches for a reachable cycle intersecting every
// acceptance set, returning the Kripke-state lasso.
func (p *product) findAcceptingLasso() ([]int, int) {
	// Enumerate reachable product states.
	var initStates []pstate
	for _, s := range p.k.Init {
		for _, qn := range p.inits {
			if compatible(p.k, s, qn) {
				initStates = append(initStates, pstate{s: s, q: qn.id})
			}
		}
	}
	index := map[pstate]int{}
	var order []pstate
	adj := map[int][]int{}
	var stack []pstate
	for _, is := range initStates {
		if _, seen := index[is]; !seen {
			index[is] = len(order)
			order = append(order, is)
			stack = append(stack, is)
		}
	}
	for len(stack) > 0 {
		p.b.Tick("ltl.product")
		ps := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range p.succs(ps) {
			if _, seen := index[t]; !seen {
				p.b.States(1, "ltl.product")
				index[t] = len(order)
				order = append(order, t)
				stack = append(stack, t)
			}
			adj[index[ps]] = append(adj[index[ps]], index[t])
		}
	}

	// Tarjan SCC over the reachable product graph.
	sccID := tarjan(len(order), adj)
	// Group members per SCC.
	members := map[int][]int{}
	for v, id := range sccID {
		members[id] = append(members[id], v)
	}
	for id, ms := range members {
		if !p.sccViable(ms, adj, sccID, id) {
			continue
		}
		// Check the SCC intersects every acceptance set.
		okAll := true
		for _, acc := range p.a.accept {
			found := false
			for _, v := range ms {
				if acc[order[v].q] {
					found = true
					break
				}
			}
			if !found {
				okAll = false
				break
			}
		}
		if !okAll {
			continue
		}
		return p.buildLasso(order, adj, initStates, index, ms, sccID, id)
	}
	return nil, -1
}

// sccViable: the SCC admits an infinite run (more than one member, or
// a self-loop).
func (p *product) sccViable(ms []int, adj map[int][]int, sccID []int, id int) bool {
	if len(ms) > 1 {
		return true
	}
	v := ms[0]
	for _, w := range adj[v] {
		if w == v {
			return true
		}
	}
	return false
}

// buildLasso constructs a concrete counterexample: a stem from an
// initial product state into the SCC, then a cycle inside the SCC
// visiting a representative of every acceptance set.
func (p *product) buildLasso(order []pstate, adj map[int][]int, inits []pstate, index map[pstate]int, ms []int, sccID []int, id int) ([]int, int) {
	inSCC := map[int]bool{}
	for _, v := range ms {
		inSCC[v] = true
	}
	// Stem: BFS from any initial vertex to the SCC.
	prev := make([]int, len(order))
	for i := range prev {
		prev[i] = -2
	}
	var queue []int
	for _, is := range inits {
		v := index[is]
		if prev[v] == -2 {
			prev[v] = -1
			queue = append(queue, v)
		}
	}
	entry := -1
	for len(queue) > 0 && entry < 0 {
		v := queue[0]
		queue = queue[1:]
		if inSCC[v] {
			entry = v
			break
		}
		for _, w := range adj[v] {
			if prev[w] == -2 {
				prev[w] = v
				queue = append(queue, w)
			}
		}
	}
	if entry < 0 {
		return nil, -1
	}
	var stem []int
	for v := entry; v != -1; v = prev[v] {
		stem = append([]int{v}, stem...)
	}

	// Cycle: within the SCC, visit one representative of each
	// acceptance set, then return to entry. bfsIn finds a shortest
	// non-empty path (≥ 1 step) from `from` to a goal vertex, staying
	// in the SCC; the returned segment excludes `from`. Goal vertices
	// are tested on edge traversal, so cycles back to `from` itself
	// are found.
	bfsIn := func(from int, goal func(int) bool) []int {
		pr := map[int]int{from: -1}
		q := []int{from}
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, w := range adj[v] {
				if !inSCC[w] {
					continue
				}
				if goal(w) {
					var seg []int
					for x := v; x != -1; x = pr[x] {
						seg = append([]int{x}, seg...)
					}
					seg = append(seg, w)
					return seg[1:] // exclude `from`
				}
				if _, seen := pr[w]; seen {
					continue
				}
				pr[w] = v
				q = append(q, w)
			}
		}
		return nil
	}
	cycle := []int{entry}
	cur := entry
	for _, acc := range p.a.accept {
		goal := func(v int) bool { return acc[order[v].q] }
		if goal(cur) {
			continue
		}
		seg := bfsIn(cur, goal)
		if seg == nil {
			return nil, -1
		}
		cycle = append(cycle, seg...)
		cur = cycle[len(cycle)-1]
	}
	// Close the loop back to entry with at least one step.
	seg := bfsIn(cur, func(v int) bool { return v == entry })
	if seg == nil {
		return nil, -1
	}
	cycle = append(cycle, seg...)

	// Render as Kripke states: stem + the cycle's interior. The cycle
	// both starts and ends at entry; the final entry is represented by
	// the loop-back to index `loop`, so it is not repeated.
	var path []int
	for _, v := range stem {
		path = append(path, order[v].s)
	}
	loop := len(path) - 1
	for _, v := range cycle[1 : len(cycle)-1] {
		path = append(path, order[v].s)
	}
	return path, loop
}

// tarjan computes SCC IDs for a graph with n vertices.
func tarjan(n int, adj map[int][]int) []int {
	ids := make([]int, n)
	low := make([]int, n)
	num := make([]int, n)
	onStack := make([]bool, n)
	for i := range num {
		num[i] = -1
		ids[i] = -1
	}
	var stack []int
	counter := 0
	sccCount := 0

	type frame struct {
		v, i int
	}
	for root := 0; root < n; root++ {
		if num[root] != -1 {
			continue
		}
		var call []frame
		call = append(call, frame{v: root})
		for len(call) > 0 {
			fr := &call[len(call)-1]
			v := fr.v
			if fr.i == 0 {
				num[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for fr.i < len(adj[v]) {
				w := adj[v][fr.i]
				fr.i++
				if num[w] == -1 {
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && num[w] < low[v] {
					low[v] = num[w]
				}
			}
			if advanced {
				continue
			}
			// Post-process v.
			if low[v] == num[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					ids[w] = sccCount
					if w == v {
						break
					}
				}
				sccCount++
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return ids
}
