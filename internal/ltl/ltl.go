// Package ltl implements linear temporal logic model checking, the
// second temporal logic the paper names (§2: "properties can be
// written in temporal logic formulas such as Linear Temporal Logic
// (LTL) or Computational Tree Logic (CTL)"; NuSMV checks both).
//
// Checking uses the automata-theoretic approach: the negation of the
// property is translated to a generalized Büchi automaton with the
// classic tableau construction (Gerth–Peled–Vardi–Wolper), the
// automaton is producted with the Kripke structure, and emptiness is
// decided by SCC analysis; a non-empty product yields a lasso
// counterexample.
package ltl

import (
	"fmt"
	"strconv"
	"strings"
)

// Formula is an LTL formula. The exported constructors build the
// standard operators; internally formulas are normalised to negation
// normal form over {Prop, ¬Prop, ∧, ∨, X, U, R}.
type Formula interface {
	String() string
}

// Prop is an atomic proposition.
type Prop struct{ Name string }

// NProp is a negated atomic proposition (negation normal form).
type NProp struct{ Name string }

// TrueF and FalseF are constants.
type TrueF struct{}

// FalseF is the constant false.
type FalseF struct{}

// And is conjunction.
type And struct{ L, R Formula }

// Or is disjunction.
type Or struct{ L, R Formula }

// Next is the X operator.
type Next struct{ X Formula }

// Until is the (strong) U operator.
type Until struct{ L, R Formula }

// Release is the R operator (dual of U).
type Release struct{ L, R Formula }

func (p Prop) String() string    { return fmt.Sprintf("%q", p.Name) }
func (p NProp) String() string   { return "!" + fmt.Sprintf("%q", p.Name) }
func (TrueF) String() string     { return "true" }
func (FalseF) String() string    { return "false" }
func (f And) String() string     { return "(" + f.L.String() + " & " + f.R.String() + ")" }
func (f Or) String() string      { return "(" + f.L.String() + " | " + f.R.String() + ")" }
func (f Next) String() string    { return "X " + f.X.String() }
func (f Until) String() string   { return "(" + f.L.String() + " U " + f.R.String() + ")" }
func (f Release) String() string { return "(" + f.L.String() + " R " + f.R.String() + ")" }

// Derived constructors.

// F is the eventually operator: F f = true U f.
func F(f Formula) Formula { return Until{L: TrueF{}, R: f} }

// G is the globally operator: G f = false R f.
func G(f Formula) Formula { return Release{L: FalseF{}, R: f} }

// Not negates a formula, pushing the negation to the propositions.
func Not(f Formula) Formula {
	switch x := f.(type) {
	case Prop:
		return NProp{Name: x.Name}
	case NProp:
		return Prop{Name: x.Name}
	case TrueF:
		return FalseF{}
	case FalseF:
		return TrueF{}
	case And:
		return Or{L: Not(x.L), R: Not(x.R)}
	case Or:
		return And{L: Not(x.L), R: Not(x.R)}
	case Next:
		return Next{X: Not(x.X)}
	case Until:
		return Release{L: Not(x.L), R: Not(x.R)}
	case Release:
		return Until{L: Not(x.L), R: Not(x.R)}
	}
	panic(fmt.Sprintf("ltl: Not(%T)", f))
}

// Implies builds f -> g as ¬f ∨ g.
func Implies(f, g Formula) Formula { return Or{L: Not(f), R: g} }

// ---------------------------------------------------------------------------
// Parser
//
// Grammar (precedence low→high):
//
//	f ::= f '->' f | f '|' f | f '&' f
//	    | 'X' f | 'F' f | 'G' f | '!' f
//	    | f 'U' f | f 'R' f                (binary temporal, left assoc)
//	    | '(' f ')' | 'true' | 'false' | prop
type parser struct {
	src      string
	pos      int
	depth    int
	maxDepth int
}

// DefaultMaxDepth is the nesting-depth limit Parse enforces; beyond
// it the recursive-descent parser (and the recursive NNF rewrite)
// would risk exhausting the stack on adversarial inputs.
const DefaultMaxDepth = 1000

// Parse parses an LTL formula. Propositions are double-quoted strings
// or bare word tokens, as in the ctl package. Formulas nested deeper
// than DefaultMaxDepth are rejected; use ParseDepth for a different
// limit.
func Parse(src string) (Formula, error) {
	return ParseDepth(src, DefaultMaxDepth)
}

// ParseDepth is Parse with an explicit nesting-depth limit
// (maxDepth <= 0 selects DefaultMaxDepth).
func ParseDepth(src string, maxDepth int) (Formula, error) {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	p := &parser{src: src, maxDepth: maxDepth}
	f, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("ltl: trailing input at %d: %q", p.pos, p.src[p.pos:])
	}
	return f, nil
}

// MustParse panics on parse errors.
func MustParse(src string) Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *parser) skipWS() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) peekWord() string {
	p.skipWS()
	i := p.pos
	for i < len(p.src) && isWordChar(p.src[i]) {
		i++
	}
	return p.src[p.pos:i]
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '.' || c == '=' || c == '<' || c == '>' || c == ':'
}

func (p *parser) eat(s string) bool {
	p.skipWS()
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) parseImplies() (Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.eat("->") {
		r, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		return Implies(l, r), nil
	}
	return l, nil
}

func (p *parser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == '|' {
			p.pos++
			r, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			l = Or{L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseAnd() (Formula, error) {
	l, err := p.parseBinaryTemporal()
	if err != nil {
		return nil, err
	}
	for {
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == '&' {
			p.pos++
			r, err := p.parseBinaryTemporal()
			if err != nil {
				return nil, err
			}
			l = And{L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseBinaryTemporal() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peekWord() {
		case "U":
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = Until{L: l, R: r}
		case "R":
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = Release{L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Formula, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > p.maxDepth {
		return nil, fmt.Errorf("ltl: formula exceeds maximum nesting depth %d", p.maxDepth)
	}
	p.skipWS()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("ltl: unexpected end of formula")
	}
	switch {
	case p.src[p.pos] == '!':
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(x), nil
	case p.src[p.pos] == '(':
		p.pos++
		f, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		p.skipWS()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("ltl: missing ')' at %d", p.pos)
		}
		p.pos++
		return f, nil
	case p.src[p.pos] == '"':
		// Go-style quoted proposition; escape sequences are decoded so
		// the %q rendering of any name parses back to the same name.
		start := p.pos
		p.pos++
		for p.pos < len(p.src) {
			switch p.src[p.pos] {
			case '\\':
				p.pos++
				if p.pos < len(p.src) {
					p.pos++
				}
			case '"':
				p.pos++
				name, err := strconv.Unquote(p.src[start:p.pos])
				if err != nil {
					return nil, fmt.Errorf("ltl: bad proposition literal at %d: %v", start, err)
				}
				return Prop{Name: name}, nil
			default:
				p.pos++
			}
		}
		return nil, fmt.Errorf("ltl: unterminated proposition at %d", start)
	}
	w := p.peekWord()
	switch w {
	case "X", "F", "G":
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch w {
		case "X":
			return Next{X: x}, nil
		case "F":
			return F(x), nil
		default:
			return G(x), nil
		}
	case "true":
		p.pos += 4
		return TrueF{}, nil
	case "false":
		p.pos += 5
		return FalseF{}, nil
	case "", "U", "R":
		return nil, fmt.Errorf("ltl: unexpected token at %d", p.pos)
	}
	p.pos += len(w)
	return Prop{Name: w}, nil
}
