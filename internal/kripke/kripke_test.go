package kripke

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

func modelOf(t *testing.T, name, src string) *statemodel.Model {
	t.Helper()
	app, err := ir.BuildSource(name, src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := statemodel.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewAllInitial(t *testing.T) {
	k := New(5)
	if k.N != 5 || len(k.Init) != 5 {
		t.Errorf("N=%d init=%v", k.N, k.Init)
	}
	for s := 0; s < 5; s++ {
		if len(k.Labels[s]) != 0 {
			t.Errorf("state %d has labels", s)
		}
	}
}

func TestAddEdgeDeduplicates(t *testing.T) {
	k := New(2)
	k.AddEdge(0, 1, "a")
	k.AddEdge(0, 1, "b")
	k.AddEdge(0, 1, "a")
	if len(k.Succs[0]) != 1 {
		t.Errorf("succs = %v", k.Succs[0])
	}
	if len(k.Preds[1]) != 1 {
		t.Errorf("preds = %v", k.Preds[1])
	}
	labels := k.EdgeInfo[[2]int{0, 1}]
	if len(labels) != 2 || labels[0] != "a" || labels[1] != "b" {
		t.Errorf("edge labels = %v", labels)
	}
}

func TestFromModelLabels(t *testing.T) {
	m := modelOf(t, "water-leak", paperapps.WaterLeakDetector)
	k := FromModel(m)
	if k.N != 4 {
		t.Fatalf("N = %d", k.N)
	}
	// Every state carries one var=value proposition per variable.
	for s := 0; s < k.N; s++ {
		count := 0
		for p := range k.Labels[s] {
			if !strings.HasPrefix(p, "ev:") {
				count++
			}
		}
		if count != 2 {
			t.Errorf("state %d has %d value props: %v", s, count, k.Labels[s])
		}
	}
	// Event markers exist on wet-event targets.
	marked := 0
	for s := 0; s < k.N; s++ {
		if k.HasProp(s, "ev:waterSensor.water.wet") {
			marked++
			if !k.HasProp(s, "valve.valve=closed") {
				t.Errorf("wet-marked state %d has open valve", s)
			}
		}
	}
	if marked == 0 {
		t.Error("no event-marked states")
	}
}

func TestFromModelTotality(t *testing.T) {
	m := modelOf(t, "water-leak", paperapps.WaterLeakDetector)
	k := FromModel(m)
	for s := 0; s < k.N; s++ {
		if len(k.Succs[s]) == 0 {
			t.Errorf("state %d deadlocks", s)
		}
	}
}

func TestPredsConsistent(t *testing.T) {
	m := modelOf(t, "smoke-alarm", paperapps.SmokeAlarm)
	k := FromModel(m)
	for s := 0; s < k.N; s++ {
		for _, tgt := range k.Succs[s] {
			found := false
			for _, p := range k.Preds[tgt] {
				if p == s {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing pred entry", s, tgt)
			}
		}
	}
}

func TestProps(t *testing.T) {
	m := modelOf(t, "water-leak", paperapps.WaterLeakDetector)
	k := FromModel(m)
	props := k.Props()
	for i := 1; i < len(props); i++ {
		if props[i-1] >= props[i] {
			t.Errorf("props not sorted: %v", props)
		}
	}
	want := map[string]bool{
		"valve.valve=open": true, "valve.valve=closed": true,
		"waterSensor.water=dry": true, "waterSensor.water=wet": true,
	}
	set := map[string]bool{}
	for _, p := range props {
		set[p] = true
	}
	for w := range want {
		if !set[w] {
			t.Errorf("missing prop %q in %v", w, props)
		}
	}
}

func TestRenderPath(t *testing.T) {
	k := New(3)
	k.Names[0] = "[a]"
	k.Names[1] = "[b]"
	k.Names[2] = "[c]"
	k.AddEdge(0, 1, "e1")
	k.AddEdge(1, 2, "e2")
	out := k.RenderPath([]int{0, 1, 2})
	for _, want := range []string{"[a]", "[b]", "[c]", "e1", "e2", "-->"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if got := k.RenderPath([]int{1}); got != "[b]" {
		t.Errorf("single-state render = %q", got)
	}
}
