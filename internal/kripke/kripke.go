// Package kripke translates Soteria state models into Kripke
// structures (paper §5: "We translate the state model of an IoT app
// into a Kripke structure"), the input format of the model-checking
// engines (explicit, BDD-symbolic, and SAT/BMC).
//
// Atomic propositions are "variable=value" facts plus per-state event
// markers "ev:<event>" set on states entered via that event, which
// lets properties refer to triggers. The transition relation is made
// total by adding self-loops to deadlocked states (CTL semantics over
// total relations).
package kripke

import (
	"fmt"
	"sort"
	"strings"

	"github.com/soteria-analysis/soteria/internal/statemodel"
)

// Structure is an explicit Kripke structure.
type Structure struct {
	N      int
	Init   []int
	Succs  [][]int
	Preds  [][]int
	Labels []map[string]bool
	Names  []string // human-readable state names
	// EdgeInfo retains, per (from, to) pair, the transition labels —
	// used for counterexample rendering.
	EdgeInfo map[[2]int][]string
}

// HasProp reports whether proposition p holds in state s.
func (k *Structure) HasProp(s int, p string) bool { return k.Labels[s][p] }

// AddEdge inserts an edge (deduplicated).
func (k *Structure) AddEdge(from, to int, label string) {
	for _, t := range k.Succs[from] {
		if t == to {
			if label != "" {
				k.EdgeInfo[[2]int{from, to}] = appendUnique(k.EdgeInfo[[2]int{from, to}], label)
			}
			return
		}
	}
	k.Succs[from] = append(k.Succs[from], to)
	k.Preds[to] = append(k.Preds[to], from)
	if label != "" {
		k.EdgeInfo[[2]int{from, to}] = appendUnique(k.EdgeInfo[[2]int{from, to}], label)
	}
}

func appendUnique(ss []string, s string) []string {
	for _, t := range ss {
		if t == s {
			return ss
		}
	}
	return append(ss, s)
}

// New creates an empty structure with n states, all initial.
func New(n int) *Structure {
	k := &Structure{
		N:        n,
		Succs:    make([][]int, n),
		Preds:    make([][]int, n),
		Labels:   make([]map[string]bool, n),
		Names:    make([]string, n),
		EdgeInfo: map[[2]int][]string{},
	}
	for i := 0; i < n; i++ {
		k.Labels[i] = map[string]bool{}
		k.Names[i] = fmt.Sprintf("s%d", i)
		k.Init = append(k.Init, i)
	}
	return k
}

// FromModel builds the Kripke structure of a state model. Every model
// state is initial (the environment may start anywhere); transitions
// with residual guards are included (they are possible behaviours —
// the sound over-approximation the paper accepts).
func FromModel(m *statemodel.Model) *Structure {
	k := New(len(m.States))
	for s := range m.States {
		k.Names[s] = m.StateLabel(s)
		for vi, v := range m.Vars {
			k.Labels[s][v.Key+"="+v.Values[m.States[s].Idx[vi]]] = true
		}
	}
	for _, t := range m.Transitions {
		k.AddEdge(t.From, t.To, t.Label())
		// Event marker on the target state.
		k.Labels[t.To]["ev:"+t.Event.String()] = true
	}
	// Total transition relation: deadlocked states self-loop.
	for s := 0; s < k.N; s++ {
		if len(k.Succs[s]) == 0 {
			k.AddEdge(s, s, "stutter")
		}
	}
	return k
}

// Props returns the sorted set of all propositions used in the
// structure.
func (k *Structure) Props() []string {
	set := map[string]bool{}
	for _, l := range k.Labels {
		for p := range l {
			set[p] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// RenderPath formats a state path with edge labels for counterexample
// output.
func (k *Structure) RenderPath(path []int) string {
	var sb strings.Builder
	for i, s := range path {
		if i > 0 {
			labels := k.EdgeInfo[[2]int{path[i-1], s}]
			sb.WriteString("\n  --[")
			sb.WriteString(strings.Join(labels, " | "))
			sb.WriteString("]--> ")
		}
		sb.WriteString(k.Names[s])
	}
	return sb.String()
}
