package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram: log-spaced upper
// bounds in seconds, lock-free atomic counters, renderable in
// Prometheus text exposition format. A nil *Histogram ignores
// observations and snapshots to zero.
type Histogram struct {
	bounds []float64       // ascending upper bounds, seconds
	counts []atomic.Uint64 // len(bounds)+1; the last bucket is +Inf
	total  atomic.Uint64
	sumNS  atomic.Int64
}

// NewHistogram creates a histogram with the given ascending upper
// bounds (seconds). It panics on unsorted or empty bounds — bucket
// layouts are compile-time decisions.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// DefaultLatencyBounds is the bucket layout shared by every latency
// histogram the daemon exports: 100µs doubling through ~52s (20
// buckets plus +Inf). Log-spacing keeps sub-millisecond property
// checks and multi-second market sweeps on the same scale.
func DefaultLatencyBounds() []float64 {
	bounds := make([]float64, 20)
	b := 100e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.observe(d.Seconds(), d.Nanoseconds())
}

// ObserveSeconds records one value given in seconds.
func (h *Histogram) ObserveSeconds(sec float64) {
	if h == nil {
		return
	}
	h.observe(sec, int64(sec*1e9))
}

func (h *Histogram) observe(sec float64, ns int64) {
	// First bound >= sec; the overflow bucket is len(bounds).
	i := sort.SearchFloat64s(h.bounds, sec)
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumNS.Add(ns)
}

// HistogramSnapshot is a consistent-enough point-in-time copy for
// rendering (individual counters are read atomically; a scrape racing
// an observation may be off by one observation, which Prometheus
// tolerates).
type HistogramSnapshot struct {
	Bounds     []float64 // upper bounds, seconds
	Counts     []uint64  // per-bucket counts, len(Bounds)+1, last is +Inf
	Count      uint64
	SumSeconds float64
}

// Snapshot copies the current counters (zero value for nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Counts:     make([]uint64, len(h.counts)),
		Count:      h.total.Load(),
		SumSeconds: float64(h.sumNS.Load()) / 1e9,
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Series pairs a histogram with an optional label for rendering
// several series under one metric family (e.g. engine="bdd").
// Label=="" renders an unlabeled series.
type Series struct {
	Label string
	Value string
	H     *Histogram
}

// WriteHistogramProm renders one histogram family in Prometheus text
// exposition format 0.0.4: one HELP/TYPE pair, then per series the
// cumulative _bucket samples ending at le="+Inf", plus _sum and
// _count.
func WriteHistogramProm(w io.Writer, name, help string, series ...Series) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for _, s := range series {
		snap := s.H.Snapshot()
		labelPrefix := ""
		bare := ""
		if s.Label != "" {
			labelPrefix = fmt.Sprintf("%s=%q,", s.Label, s.Value)
			bare = fmt.Sprintf("{%s=%q}", s.Label, s.Value)
		}
		var cum uint64
		for i, b := range snap.Bounds {
			cum += snap.Counts[i]
			fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labelPrefix, formatBound(b), cum)
		}
		if len(snap.Counts) > 0 {
			cum += snap.Counts[len(snap.Counts)-1]
		}
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix, cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", name, bare, formatFloat(snap.SumSeconds))
		fmt.Fprintf(w, "%s_count%s %d\n", name, bare, snap.Count)
	}
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func formatFloat(f float64) string {
	if math.IsInf(f, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
