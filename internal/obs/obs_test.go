package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.End()
	s.Set("k", "v")
	s.SetInt("n", 1)
	if c := s.StartChild("c"); c != nil {
		t.Fatalf("nil span produced non-nil child")
	}
	if s.Name() != "" || s.Duration() != 0 || s.Render() != "" || s.Shape() != "" {
		t.Fatalf("nil span accessors not zero")
	}
	if _, ok := s.Str("k"); ok {
		t.Fatalf("nil span Str hit")
	}
	s.Walk(func(int, *Span) { t.Fatalf("nil span walked") })
}

func TestNilTracerMintsNilSpans(t *testing.T) {
	var tr *Tracer
	if tr.Root("job") != nil {
		t.Fatalf("nil tracer minted a span")
	}
	if (&Tracer{}).Root("job") == nil {
		t.Fatalf("enabled tracer minted nil")
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	root := NewRoot("job")
	item := root.StartChild("item")
	item.Set("key", "alarm")
	ir := item.StartChild("ir")
	ir.SetInt("apps", 2)
	ir.End()
	check := item.StartChild("check")
	check.End()
	item.End()
	root.End()

	if got := root.Shape(); got != "job(item(ir,check))" {
		t.Fatalf("shape = %q", got)
	}
	if n, ok := ir.Int("apps"); !ok || n != 2 {
		t.Fatalf("Int(apps) = %d, %v", n, ok)
	}
	if v, ok := item.Str("key"); !ok || v != "alarm" {
		t.Fatalf("Str(key) = %q, %v", v, ok)
	}
	r := root.Render()
	for _, want := range []string{"job ", "\n  item ", "key=alarm", "\n    ir ", "apps=2"} {
		if !strings.Contains(r, want) {
			t.Fatalf("render missing %q:\n%s", want, r)
		}
	}
	var names []string
	root.Walk(func(depth int, sp *Span) { names = append(names, sp.Name()) })
	if strings.Join(names, ",") != "job,item,ir,check" {
		t.Fatalf("walk order = %v", names)
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	s := NewRoot("x")
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Fatalf("second End changed duration")
	}
}

func TestSortedShapeIgnoresSiblingOrder(t *testing.T) {
	mk := func(order []string) *Span {
		root := NewRoot("check")
		for _, id := range order {
			p := root.StartChild("property")
			p.Set("id", id)
			p.StartChild("engine").End()
			p.End()
		}
		root.End()
		return root
	}
	a := mk([]string{"P.1", "P.2", "P.3"})
	b := mk([]string{"P.3", "P.1", "P.2"})
	if a.SortedShape() != b.SortedShape() {
		t.Fatalf("sorted shapes differ:\n%s\n%s", a.SortedShape(), b.SortedShape())
	}
	if a.Shape() == b.Shape() {
		t.Fatalf("plain shapes unexpectedly equal despite different order")
	}
}

func TestConcurrentChildren(t *testing.T) {
	root := NewRoot("job")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.StartChild("p")
			c.SetInt("n", 1)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 32 {
		t.Fatalf("children = %d, want 32", got)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatalf("empty ctx carried a span")
	}
	if sp := Start(ctx, "x"); sp != nil {
		t.Fatalf("Start on spanless ctx returned non-nil")
	}
	ctx2, sp := StartSpan(ctx, "x")
	if ctx2 != ctx || sp != nil {
		t.Fatalf("StartSpan on spanless ctx should be identity")
	}

	root := NewRoot("job")
	ctx = WithSpan(ctx, root)
	if FromContext(ctx) != root {
		t.Fatalf("FromContext != root")
	}
	a := Start(ctx, "a")
	b := Start(ctx, "b")
	a.End()
	b.End()
	ctx3, c := StartSpan(ctx, "c")
	if FromContext(ctx3) != c {
		t.Fatalf("StartSpan did not rewrap ctx")
	}
	d := Start(ctx3, "d")
	d.End()
	c.End()
	root.End()
	if got := root.Shape(); got != "job(a,b,c(d))" {
		t.Fatalf("shape = %q", got)
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // le=0.001 inclusive → bucket 0
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // +Inf
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	want := []uint64{2, 1, 0, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.SumSeconds < 1.0065 || s.SumSeconds > 1.0066 {
		t.Fatalf("sum = %v", s.SumSeconds)
	}
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if nilH.Snapshot().Count != 0 {
		t.Fatalf("nil histogram counted")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(n*j) * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestWriteHistogramPromIsValid(t *testing.T) {
	h1 := NewHistogram([]float64{0.001, 0.01})
	h1.Observe(2 * time.Millisecond)
	h2 := NewHistogram([]float64{0.001, 0.01})
	var buf bytes.Buffer
	WriteHistogramProm(&buf, "soteriad_test_seconds", "test latency",
		Series{Label: "engine", Value: "explicit", H: h1},
		Series{Label: "engine", Value: "bdd", H: h2},
	)
	out := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("rendered histogram fails validation: %v\n%s", err, out)
	}
	for _, want := range []string{
		`soteriad_test_seconds_bucket{engine="explicit",le="0.001"} 0`,
		`soteriad_test_seconds_bucket{engine="explicit",le="+Inf"} 1`,
		`soteriad_test_seconds_count{engine="explicit"} 1`,
		`soteriad_test_seconds_bucket{engine="bdd",le="+Inf"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("trace IDs collided")
	}
	if len(a) != 32 || !ValidTraceID(a) {
		t.Fatalf("generated ID invalid: %q", a)
	}
	for _, bad := range []string{"", "short", strings.Repeat("a", 65), "has space", "semi;colon", "new\nline"} {
		if ValidTraceID(bad) {
			t.Fatalf("ValidTraceID(%q) = true", bad)
		}
	}
	for _, good := range []string{"abcd1234", "ik-Style_Trace-01"} {
		if !ValidTraceID(good) {
			t.Fatalf("ValidTraceID(%q) = false", good)
		}
	}
}
