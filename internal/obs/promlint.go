package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text-format (0.0.4) scrape
// for the structural invariants the /metrics endpoint promises:
//
//   - every sample belongs to a family announced by exactly one
//     `# HELP` and one `# TYPE` line, both preceding the samples;
//   - no duplicate samples (same name and label set);
//   - counter families are named with a `_total` suffix;
//   - histogram families have cumulative buckets in ascending `le`
//     order ending at `+Inf`, a `_sum`, and a `_count` equal to the
//     `+Inf` bucket;
//   - every sample value parses as a float.
//
// It returns the first violation found, or nil. The /metrics test and
// the smoke script's scrape phase both run it.
func ValidateExposition(text []byte) error {
	v := &expoValidator{
		families: map[string]*familyInfo{},
		seen:     map[string]bool{},
	}
	for ln, line := range strings.Split(string(text), "\n") {
		if err := v.line(line); err != nil {
			return fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	return v.finish()
}

type familyInfo struct {
	help    bool
	typ     string
	sampled bool
	// histSeries orders histogram series (keyed by the label set minus
	// le) for the cumulativity check.
	histSeries map[string]*histSeries
	order      []string
}

type histSeries struct {
	les      []float64
	counts   []float64
	hasInf   bool
	infCount float64
	sum      *float64
	count    *float64
}

type expoValidator struct {
	families map[string]*familyInfo
	seen     map[string]bool // full sample identity: name + sorted labels
}

func (v *expoValidator) line(line string) error {
	line = strings.TrimRight(line, "\r")
	if strings.TrimSpace(line) == "" {
		return nil
	}
	if strings.HasPrefix(line, "# HELP ") {
		name := metaName(line[len("# HELP "):])
		if name == "" {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		f := v.family(name)
		if f.help {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		if f.sampled {
			return fmt.Errorf("HELP for %s after its samples", name)
		}
		f.help = true
		return nil
	}
	if strings.HasPrefix(line, "# TYPE ") {
		rest := strings.Fields(line[len("# TYPE "):])
		if len(rest) != 2 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := rest[0], rest[1]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %s", typ, name)
		}
		f := v.family(name)
		if f.typ != "" {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if f.sampled {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		f.typ = typ
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return nil // plain comment
	}
	return v.sample(line)
}

func metaName(rest string) string {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

func (v *expoValidator) family(name string) *familyInfo {
	f := v.families[name]
	if f == nil {
		f = &familyInfo{histSeries: map[string]*histSeries{}}
		v.families[name] = f
	}
	return f
}

func (v *expoValidator) sample(line string) error {
	name, labels, valueStr, err := parseSample(line)
	if err != nil {
		return err
	}
	value, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return fmt.Errorf("sample %s: bad value %q", name, valueStr)
	}

	famName, f := v.resolveFamily(name)
	if f == nil {
		return fmt.Errorf("sample %s has no preceding TYPE", name)
	}
	if !f.help {
		return fmt.Errorf("sample %s has no preceding HELP", name)
	}
	f.sampled = true

	id := name + "{" + canonicalLabels(labels) + "}"
	if v.seen[id] {
		return fmt.Errorf("duplicate sample %s", id)
	}
	v.seen[id] = true

	if f.typ == "histogram" {
		v.histSample(famName, f, name, labels, value)
	}
	return nil
}

// resolveFamily maps a sample name to its announced family, folding
// histogram suffixes onto the base name.
func (v *expoValidator) resolveFamily(name string) (string, *familyInfo) {
	if f, ok := v.families[name]; ok && f.typ != "" {
		return name, f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if f, okf := v.families[base]; okf && f.typ == "histogram" {
			return base, f
		}
	}
	return "", nil
}

func (v *expoValidator) histSample(fam string, f *familyInfo, name string, labels map[string]string, value float64) {
	rest := map[string]string{}
	for k, val := range labels {
		if k != "le" {
			rest[k] = val
		}
	}
	key := canonicalLabels(rest)
	hs := f.histSeries[key]
	if hs == nil {
		hs = &histSeries{}
		f.histSeries[key] = hs
		f.order = append(f.order, key)
	}
	switch name {
	case fam + "_bucket":
		le := labels["le"]
		if le == "+Inf" {
			hs.hasInf = true
			hs.infCount = value
			return
		}
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			b = -1 // finish() reports via ordering check
		}
		hs.les = append(hs.les, b)
		hs.counts = append(hs.counts, value)
	case fam + "_sum":
		hs.sum = &value
	case fam + "_count":
		hs.count = &value
	}
}

func (v *expoValidator) finish() error {
	names := make([]string, 0, len(v.families))
	for name := range v.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := v.families[name]
		if (f.help || f.typ != "") && !f.sampled {
			return fmt.Errorf("family %s announced but has no samples", name)
		}
		if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("counter %s is not named with a _total suffix", name)
		}
		if f.typ != "histogram" {
			continue
		}
		for _, key := range f.order {
			hs := f.histSeries[key]
			where := name
			if key != "" {
				where += "{" + key + "}"
			}
			if !hs.hasInf {
				return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", where)
			}
			prev := -1.0
			prevCount := -1.0
			for i, le := range hs.les {
				if le <= prev {
					return fmt.Errorf("histogram %s buckets not in ascending le order", where)
				}
				if hs.counts[i] < prevCount {
					return fmt.Errorf("histogram %s bucket counts are not cumulative", where)
				}
				prev, prevCount = le, hs.counts[i]
			}
			if hs.infCount < prevCount {
				return fmt.Errorf("histogram %s +Inf bucket below preceding bucket", where)
			}
			if hs.sum == nil {
				return fmt.Errorf("histogram %s missing _sum", where)
			}
			if hs.count == nil {
				return fmt.Errorf("histogram %s missing _count", where)
			}
			if *hs.count != hs.infCount {
				return fmt.Errorf("histogram %s _count %v != +Inf bucket %v", where, *hs.count, hs.infCount)
			}
		}
	}
	return nil
}

// parseSample splits `name{k="v",...} value` (labels optional) into
// its parts, handling \" escapes inside label values.
func parseSample(line string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, "", fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		end, lerr := parseLabels(rest, labels)
		if lerr != nil {
			return "", nil, "", fmt.Errorf("sample %s: %w", name, lerr)
		}
		rest = rest[end:]
	}
	value = strings.TrimSpace(rest)
	// The exposition format allows an optional timestamp after the
	// value; strip it so the value parse stays meaningful.
	if f := strings.Fields(value); len(f) > 0 {
		value = f[0]
	}
	if value == "" {
		return "", nil, "", fmt.Errorf("sample %s: missing value", name)
	}
	return name, labels, value, nil
}

// parseLabels consumes a {k="v",...} block starting at s[0]=='{' and
// returns the index one past the closing brace.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("malformed labels %q", s)
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				next := s[i+1]
				switch next {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(next)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		out[strings.TrimSpace(key)] = val.String()
	}
}

// canonicalLabels renders a label map sorted by key, for duplicate
// detection and series keying.
func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return strings.Join(parts, ",")
}
