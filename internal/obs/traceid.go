package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// NewTraceID mints a 32-hex-character random trace ID. Trace IDs are
// generated once per logical request — by the client before its first
// attempt (so retries share the ID) or by the daemon at submission
// when the client sent none — and stamped on every log line, response
// header, and timing tree for that job.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; keep the
		// signature allocation-free rather than plumb an error.
		panic("obs: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether a caller-supplied trace ID is safe to
// adopt: 8–64 characters of [A-Za-z0-9_-]. Anything else (empty,
// oversized, control characters, header-splitting attempts) is
// rejected and the daemon mints its own.
func ValidTraceID(s string) bool {
	if len(s) < 8 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}
