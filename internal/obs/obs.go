// Package obs is Soteria's zero-dependency telemetry layer: a span
// tracer recording a timing tree per analysis (parse → IR → state
// model → per-(property, engine) check), fixed-bucket latency
// histograms renderable in Prometheus exposition format, trace-ID
// helpers for request correlation, and an exposition-format validator
// used by tests and the smoke script.
//
// Everything here is built for a hot pipeline: a nil *Span (and a nil
// *Tracer) is valid and every method on it is a no-op, so uninstrumented
// runs pay only a context lookup. Histograms are lock-free atomics.
package obs

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Tracer mints root spans. A nil *Tracer is disabled: Root returns a
// nil span and the entire instrumented pipeline degrades to no-ops.
// The zero value is enabled.
type Tracer struct{}

// Root starts a new root span, or returns nil when the tracer is nil.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return NewRoot(name)
}

// Attr is one key/value annotation on a span. Values are strings;
// integer annotations are formatted in decimal (see Span.SetInt).
type Attr struct {
	Key string
	Val string
}

// Span is one timed node of a trace tree. Spans are created with
// NewRoot or StartChild, annotated with Set/SetInt, and closed with
// End. A nil *Span is valid: every method no-ops (returning zero
// values), which is how tracing-off runs stay nearly free.
//
// Children may be started and ended from concurrent goroutines; each
// span's own state is guarded by its mutex.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	ended    bool
	dur      time.Duration
	attrs    []Attr
	children []*Span
}

// NewRoot starts a new root span.
func NewRoot(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild starts a child span under s. Nil-safe: a nil parent
// returns a nil child.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End freezes the span's duration. The first call wins; later calls
// (and calls on nil) are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Set annotates the span with a string attribute.
func (s *Span) Set(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
}

// SetInt annotates the span with an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	s.Set(key, strconv.FormatInt(v, 10))
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the frozen duration for ended spans and the
// running duration otherwise (0 for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Attrs returns a copy of the span's attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Str looks up a string attribute; for repeated keys the last write
// wins.
func (s *Span) Str(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].Key == key {
			return s.attrs[i].Val, true
		}
	}
	return "", false
}

// Int looks up an integer attribute (false when absent or
// non-numeric).
func (s *Span) Int(key string) (int64, bool) {
	v, ok := s.Str(key)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Children returns a copy of the span's children in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Walk visits the tree pre-order, passing each span's depth (0 for s).
func (s *Span) Walk(fn func(depth int, sp *Span)) {
	if s == nil {
		return
	}
	s.walk(0, fn)
}

func (s *Span) walk(depth int, fn func(int, *Span)) {
	fn(depth, s)
	for _, c := range s.Children() {
		c.walk(depth+1, fn)
	}
}

// Render formats the tree as an indented text block, one span per
// line: name, duration, then key=value attributes. It is the format
// printed by `soteria -explain-timing` and the daemon's slow-job log.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.Walk(func(depth int, sp *Span) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(sp.Name())
		fmt.Fprintf(&b, " %s", sp.Duration().Round(time.Microsecond))
		for _, a := range sp.Attrs() {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Val)
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// Shape renders the tree's structure without timings:
// "name(child1,child2(grand))", where each node is its name plus its
// "id" attribute when set (e.g. "property:P.9"). Two runs of the same
// input produce equal shapes when scheduling is deterministic; the
// determinism test relies on this.
func (s *Span) Shape() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.shape(&b)
	return b.String()
}

func (s *Span) shape(b *strings.Builder) {
	b.WriteString(sortKey(s))
	kids := s.Children()
	if len(kids) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range kids {
		if i > 0 {
			b.WriteByte(',')
		}
		c.shape(b)
	}
	b.WriteByte(')')
}

// SortedShape is Shape with every sibling list sorted by name then by
// the "id" attribute — the scheduling-independent view used to compare
// trees produced under parallel sweeps.
func (s *Span) SortedShape() string {
	if s == nil {
		return ""
	}
	var render func(sp *Span) string
	render = func(sp *Span) string {
		kids := sp.Children()
		if len(kids) == 0 {
			return sortKey(sp)
		}
		parts := make([]string, len(kids))
		for i, c := range kids {
			parts[i] = render(c)
		}
		sort.Strings(parts)
		return sortKey(sp) + "(" + strings.Join(parts, ",") + ")"
	}
	return render(s)
}

func sortKey(sp *Span) string {
	if id, ok := sp.Str("id"); ok {
		return sp.Name() + ":" + id
	}
	return sp.Name()
}

// ---------------------------------------------------------------------------
// Context plumbing

type ctxKey struct{}

// WithSpan returns ctx carrying s as the current span. A nil span
// leaves ctx untouched.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil when ctx carries none.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start begins a child of the context's current span without rewrapping
// the context: successive Start calls on the same ctx create siblings.
// With no span in ctx it returns nil — the caller's End/Set calls
// no-op.
func Start(ctx context.Context, name string) *Span {
	return FromContext(ctx).StartChild(name)
}

// StartSpan begins a child of the context's current span and returns a
// context carrying the child, so downstream calls nest under it. With
// no span in ctx it returns (ctx, nil).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	c := FromContext(ctx).StartChild(name)
	if c == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, ctxKey{}, c), c
}
