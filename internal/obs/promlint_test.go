package obs

import (
	"strings"
	"testing"
)

func TestValidateExpositionAccepts(t *testing.T) {
	good := `# HELP soteriad_jobs_done_total jobs completed
# TYPE soteriad_jobs_done_total counter
soteriad_jobs_done_total 12
# HELP soteriad_queue_depth queued jobs
# TYPE soteriad_queue_depth gauge
soteriad_queue_depth 0
# HELP soteriad_job_seconds end-to-end latency
# TYPE soteriad_job_seconds histogram
soteriad_job_seconds_bucket{le="0.001"} 1
soteriad_job_seconds_bucket{le="0.01"} 3
soteriad_job_seconds_bucket{le="+Inf"} 4
soteriad_job_seconds_sum 0.52
soteriad_job_seconds_count 4
# HELP soteriad_engine_seconds per-engine latency
# TYPE soteriad_engine_seconds histogram
soteriad_engine_seconds_bucket{engine="bdd",le="0.001"} 0
soteriad_engine_seconds_bucket{engine="bdd",le="+Inf"} 0
soteriad_engine_seconds_sum{engine="bdd"} 0
soteriad_engine_seconds_count{engine="bdd"} 0
soteriad_engine_seconds_bucket{engine="explicit",le="0.001"} 2
soteriad_engine_seconds_bucket{engine="explicit",le="+Inf"} 2
soteriad_engine_seconds_sum{engine="explicit"} 0.001
soteriad_engine_seconds_count{engine="explicit"} 2
`
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{
			"counter missing _total",
			"# HELP x_jobs jobs\n# TYPE x_jobs counter\nx_jobs 1\n",
			"_total",
		},
		{
			"duplicate sample",
			"# HELP x_total c\n# TYPE x_total counter\nx_total 1\nx_total 2\n",
			"duplicate sample",
		},
		{
			"duplicate HELP",
			"# HELP x_total c\n# HELP x_total c\n# TYPE x_total counter\nx_total 1\n",
			"duplicate HELP",
		},
		{
			"duplicate TYPE",
			"# HELP x_total c\n# TYPE x_total counter\n# TYPE x_total counter\nx_total 1\n",
			"duplicate TYPE",
		},
		{
			"sample without TYPE",
			"x_total 1\n",
			"no preceding TYPE",
		},
		{
			"sample without HELP",
			"# TYPE x_total counter\nx_total 1\n",
			"no preceding HELP",
		},
		{
			"histogram without +Inf",
			"# HELP h latency\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"+Inf",
		},
		{
			"non-cumulative buckets",
			"# HELP h latency\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"cumulative",
		},
		{
			"count disagrees with +Inf",
			"# HELP h latency\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			"_count",
		},
		{
			"bad value",
			"# HELP x_total c\n# TYPE x_total counter\nx_total banana\n",
			"bad value",
		},
		{
			"help after samples",
			"# TYPE x_total counter\n# HELP x_total c\nx_total 1\n# HELP x_total again\n",
			"duplicate HELP",
		},
	}
	for _, tc := range cases {
		err := ValidateExposition([]byte(tc.text))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
