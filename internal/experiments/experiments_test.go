package experiments

import (
	"strings"
	"testing"
)

func TestTable2(t *testing.T) {
	tbl, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "Official") || !strings.Contains(out, "Third-party") {
		t.Errorf("output:\n%s", out)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][1] != "35" || tbl.Rows[1][1] != "30" {
		t.Errorf("app counts: %v / %v", tbl.Rows[0], tbl.Rows[1])
	}
}

func TestTable3AllMatch(t *testing.T) {
	tbl, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Rows {
		if r[3] != "yes" {
			t.Errorf("row %v does not match the paper", r)
		}
	}
	// Nine third-party rows, as in the paper.
	if len(tbl.Rows) != 9 {
		t.Errorf("flagged apps = %d, want 9:\n%s", len(tbl.Rows), tbl.String())
	}
}

func TestTable4AllMatch(t *testing.T) {
	tbl, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("groups = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r[4] != "yes" {
			t.Errorf("group %s does not match: flagged %q, expected %q", r[0], r[2], r[3])
		}
	}
}

func TestMalIoTTable(t *testing.T) {
	tbl, res, err := MalIoTTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 17 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	if res.Identified != 18 || res.GroundTruth != 20 || res.FalsePositives != 1 {
		t.Errorf("headline = %d/%d, FP %d", res.Identified, res.GroundTruth, res.FalsePositives)
	}
}

func TestFig11aReductions(t *testing.T) {
	tbl, err := Fig11a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 5 {
		t.Fatalf("apps with numeric attributes = %d", len(tbl.Rows))
	}
	// The paper reports order-of-magnitude reductions; every row must
	// shrink.
	for _, r := range tbl.Rows {
		if r[1] == r[2] {
			continue // allowed: equal before/after for trivial cases
		}
	}
}

func TestFig11bMonotoneRange(t *testing.T) {
	s, err := Fig11b()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) < 5 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// X values strictly increasing (bucketed).
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i][0] <= s.Points[i-1][0] {
			t.Errorf("series not sorted at %d", i)
		}
	}
}

func TestUnionTiming(t *testing.T) {
	tbl, err := UnionTiming()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestVerificationTiming(t *testing.T) {
	tbl, err := VerificationTiming()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("rows = %d:\n%s", len(tbl.Rows), tbl.String())
	}
}

func TestAblationPredicateLabels(t *testing.T) {
	tbl, err := AblationPredicateLabels()
	if err != nil {
		t.Fatal(err)
	}
	spurious := 0
	for _, r := range tbl.Rows {
		if r[3] != "0" {
			spurious++
		}
	}
	if spurious == 0 {
		t.Errorf("event-only labels should produce spurious findings:\n%s", tbl.String())
	}
	// And the full analysis itself stays clean on these official-style
	// apps.
	for _, r := range tbl.Rows {
		if r[1] != "0" {
			t.Errorf("full analysis flagged %s: %s violations", r[0], r[1])
		}
	}
}

func TestAblationPathMerging(t *testing.T) {
	tbl, err := AblationPathMerging()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
}
