// Package experiments regenerates every table and figure of the
// paper's evaluation (§6) from the reproduction's own corpora and
// analyzer. It is shared by cmd/soteria-bench and the repository's
// benchmark suite; EXPERIMENTS.md records the paper-vs-measured
// comparison for each output.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/soteria-analysis/soteria/internal/bmc"
	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/maliot"
	"github.com/soteria-analysis/soteria/internal/market"
	"github.com/soteria-analysis/soteria/internal/modelcheck"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/properties"
	"github.com/soteria-analysis/soteria/internal/report"
	"github.com/soteria-analysis/soteria/internal/statemodel"
	"github.com/soteria-analysis/soteria/internal/symbolic"
	"github.com/soteria-analysis/soteria/internal/symexec"
)

func parseSpec(a market.AppSpec) (*ir.App, error) { return a.Parse() }

// Parallel bounds the batch worker pool the table generators hand to
// core.AnalyzeBatch (values below 2 run sequentially). The tables are
// deterministic, so the output is identical at any setting; cmd/
// soteria-bench sets it from -parallel.
var Parallel = 1

// cache memoizes IR and whole analyses across the tables: Table 3's 65
// individual analyses feed Table 4's group parses, Fig. 11a reuses the
// models Table 2 built, and regenerating a table is nearly free.
var cache = core.NewCache()

// modelOnly runs the pipeline without any property checking — source →
// IR → state model → Kripke — which is all the dataset tables need.
var modelOnly = core.Options{}

// batchSpecs analyzes one batch item per app spec (key = spec ID) and
// returns the results in spec order, failing on the first hard error.
func batchSpecs(opts core.Options, specs []market.AppSpec) ([]core.BatchResult, error) {
	items := make([]core.BatchItem, len(specs))
	for i, spec := range specs {
		items[i] = core.BatchItem{
			Key:     spec.ID,
			Sources: []core.NamedSource{{Name: spec.Name, Source: spec.Source}},
		}
	}
	return runBatch(opts, items)
}

// batchGroups analyzes one batch item per group (key = group ID).
func batchGroups(opts core.Options, groups []market.Group) ([]core.BatchResult, error) {
	items := make([]core.BatchItem, len(groups))
	for i, g := range groups {
		var srcs []core.NamedSource
		for _, id := range g.Members {
			spec, _ := market.ByID(id)
			srcs = append(srcs, core.NamedSource{Name: spec.Name, Source: spec.Source})
		}
		items[i] = core.BatchItem{Key: g.ID, Sources: srcs}
	}
	return runBatch(opts, items)
}

func runBatch(opts core.Options, items []core.BatchItem) ([]core.BatchResult, error) {
	bo := core.BatchOptions{Options: opts, Parallel: Parallel, Cache: cache}
	results := core.AnalyzeBatch(context.Background(), bo, items...)
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
	}
	return results, nil
}

// corpusStats aggregates Table 2 numbers for a corpus half.
type corpusStats struct {
	apps      int
	devices   map[string]bool
	sumStates int
	maxStates int
	sumLOC    int
	maxLOC    int
}

func statsFor(apps []market.AppSpec) (*corpusStats, error) {
	results, err := batchSpecs(modelOnly, apps)
	if err != nil {
		return nil, err
	}
	st := &corpusStats{devices: map[string]bool{}}
	for i, spec := range apps {
		an := results[i].Analysis
		st.apps++
		for _, c := range an.Apps[0].Capabilities() {
			st.devices[c] = true
		}
		n := len(an.Model.States)
		st.sumStates += n
		if n > st.maxStates {
			st.maxStates = n
		}
		loc := spec.LOC()
		st.sumLOC += loc
		if loc > st.maxLOC {
			st.maxLOC = loc
		}
	}
	return st, nil
}

// Table2 reproduces the dataset-description table.
func Table2() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 2: Description of analyzed official and third-party apps",
		Headers: []string{"", "Nr.", "Unique Devices", "Avg/Max States", "Avg/Max LOC"},
	}
	off, err := statsFor(market.Officials())
	if err != nil {
		return nil, err
	}
	tp, err := statsFor(market.ThirdParty())
	if err != nil {
		return nil, err
	}
	row := func(label string, s *corpusStats) {
		t.AddRow(label, s.apps, len(s.devices),
			fmt.Sprintf("%d/%d", s.sumStates/s.apps, s.maxStates),
			fmt.Sprintf("%d/%d", s.sumLOC/s.apps, s.maxLOC))
	}
	row("Official", off)
	row("Third-party", tp)
	t.Note("states counted after Soteria's state-reduction algorithms (as in the paper)")
	t.Note("paper values: Official 35 apps, 14 devices, 36/180 states, 220/2633 LOC; Third-party 30, 18, 32/96, 246/1360")
	return t, nil
}

// Table3 reproduces the individual-app analysis: the violating
// third-party apps with their flagged properties; officials are
// asserted clean.
func Table3() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 3: Soteria's results on individual apps",
		Headers: []string{"ID", "Flagged properties", "Expected (paper)", "Match"},
	}
	officialsFlagged := 0
	all := market.All()
	results, err := batchSpecs(core.DefaultOptions(), all)
	if err != nil {
		return nil, err
	}
	for i, spec := range all {
		got := results[i].Analysis.ViolatedIDs()
		sort.Strings(got)
		want := market.Table3Expected[spec.ID]
		if spec.Official && len(got) > 0 {
			officialsFlagged++
		}
		if len(want) == 0 && len(got) == 0 {
			continue // clean app: omitted from the table, as in the paper
		}
		match := "yes"
		wantSet := map[string]bool{}
		for _, w := range want {
			wantSet[w] = true
		}
		gotSet := map[string]bool{}
		for _, g := range got {
			gotSet[g] = true
		}
		for _, w := range want {
			if !gotSet[w] {
				match = "NO"
			}
		}
		t.AddRow(spec.ID, strings.Join(got, ", "), strings.Join(want, ", "), match)
	}
	t.Note("officials flagged: %d (paper: 0)", officialsFlagged)
	t.Note("paper: nine third-party apps violate ten properties (TP1-TP9)")
	return t, nil
}

// Table4 reproduces the multi-app group analysis.
func Table4() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 4: Soteria's results in multi-app environments",
		Headers: []string{"Group", "Members", "Flagged", "Expected (paper)", "Match"},
	}
	groups := market.Groups()
	groupResults, err := batchGroups(core.DefaultOptions(), groups)
	if err != nil {
		return nil, err
	}
	for i, g := range groups {
		got := groupResults[i].Analysis.ViolatedIDs()
		sort.Strings(got)
		gotSet := map[string]bool{}
		for _, id := range got {
			gotSet[id] = true
		}
		match := "yes"
		for _, w := range g.Expected {
			if !gotSet[w] {
				match = "NO"
			}
		}
		t.AddRow(g.ID, strings.Join(g.Members, ","), strings.Join(got, ", "),
			strings.Join(g.Expected, ", "), match)
	}
	t.Note("a group 'matches' when every Table 4 property is flagged; extra findings are member-level violations subsumed by the group run")

	// §6.1's group study: 28 candidate groups examined, three
	// violating. G.1–G.3's analyses are cache hits from the loop above.
	violating := 0
	candidateResults, err := batchGroups(core.DefaultOptions(), market.CandidateGroups())
	if err != nil {
		return nil, err
	}
	for _, r := range candidateResults {
		if len(r.Analysis.Violations) > 0 {
			violating++
		}
	}
	t.Note("group study: %d of %d candidate groups violating (paper: 3 of 28)",
		violating, len(market.CandidateGroups()))
	return t, nil
}

// MalIoTTable reproduces the Appendix C evaluation.
func MalIoTTable() (*report.Table, *maliot.SuiteResult, error) {
	res, err := maliot.RunParallel(context.Background(), Parallel)
	if err != nil {
		return nil, nil, err
	}
	t := &report.Table{
		Title:   "MalIoT suite (Appendix C)",
		Headers: []string{"App", "Expected", "Outcome", "Reported", "Correct"},
	}
	for _, r := range res.Apps {
		t.AddRow(r.App.ID, strings.Join(r.App.Expected, ","), r.App.Outcome.String(),
			strings.Join(r.Reported, ","), fmt.Sprintf("%t", r.Correct))
	}
	t.Note("identified %d of %d ground-truth violations (paper: 17 of 20; +1 here from the T.* taint family on App11); false positives: %d (paper: 1, App5)",
		res.Identified, res.GroundTruth, res.FalsePositives)
	return t, res, nil
}

// Fig11a reproduces the state-reduction figure (top of Fig. 11):
// states before and after property abstraction for every corpus app
// with numeric-valued device attributes.
func Fig11a() (*report.Table, error) {
	t := &report.Table{
		Title:   "Fig. 11 (top): states before/after property abstraction",
		Headers: []string{"App", "Before", "After", "Reduction"},
	}
	idx := 0
	all := market.All()
	results, err := batchSpecs(modelOnly, all)
	if err != nil {
		return nil, err
	}
	for i, spec := range all {
		m := results[i].Analysis.Model
		hasNumeric := false
		for _, v := range m.Vars {
			if v.Numeric {
				hasNumeric = true
			}
		}
		if !hasNumeric {
			continue
		}
		idx++
		before, after := m.StatesBeforeReduction, len(m.States)
		t.AddRow(fmt.Sprintf("%d (%s)", idx, spec.ID), before, after,
			fmt.Sprintf("%.0fx", float64(before)/float64(after)))
	}
	t.Note("paper: reduction is often an order of magnitude or more")
	return t, nil
}

// Fig11b reproduces the extraction-overhead figure (bottom of
// Fig. 11): state-model extraction time against the number of states.
func Fig11b() (*report.Series, error) {
	s := &report.Series{
		Title:  "Fig. 11 (bottom): state-model extraction time vs states",
		XLabel: "states",
		YLabel: "ms",
	}
	type point struct {
		states int
		ms     float64
	}
	var pts []point
	// Analysis.Timings.Model is exactly the measured span: state-model
	// extraction plus Kripke construction. The shared cache is bypassed
	// here (nil) so every point is a fresh measurement, not a replay of
	// an earlier table's timing.
	addPoints := func(results []core.BatchResult) {
		for _, r := range results {
			pts = append(pts, point{
				states: len(r.Analysis.Model.States),
				ms:     float64(r.Analysis.Timings.Model.Microseconds()) / 1000,
			})
		}
	}
	all := market.All()
	items := make([]core.BatchItem, len(all))
	for i, spec := range all {
		items[i] = core.BatchItem{
			Key:     spec.ID,
			Sources: []core.NamedSource{{Name: spec.Name, Source: spec.Source}},
		}
	}
	// Multi-app combinations extend the state-count range, as the
	// paper's larger apps do.
	for _, g := range market.Groups() {
		var srcs []core.NamedSource
		for _, id := range g.Members {
			spec, _ := market.ByID(id)
			srcs = append(srcs, core.NamedSource{Name: spec.Name, Source: spec.Source})
		}
		items = append(items, core.BatchItem{Key: g.ID, Sources: srcs})
	}
	bo := core.BatchOptions{Options: modelOnly, Parallel: Parallel}
	results := core.AnalyzeBatch(context.Background(), bo, items...)
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
	}
	addPoints(results)
	sort.Slice(pts, func(i, j int) bool { return pts[i].states < pts[j].states })
	// Bucket identical state counts (average the times).
	for i := 0; i < len(pts); {
		j := i
		sum := 0.0
		for j < len(pts) && pts[j].states == pts[i].states {
			sum += pts[j].ms
			j++
		}
		s.Add(float64(pts[i].states), sum/float64(j-i))
		i = j
	}
	return s, nil
}

// UnionTiming reproduces §6.3's union measurement: per Table 4 group,
// the time Algorithm 2 takes to union the member models.
func UnionTiming() (*report.Table, error) {
	t := &report.Table{
		Title:   "Union algorithm timing (paper §6.3)",
		Headers: []string{"Group", "Apps", "Union states", "Union edges", "Time"},
	}
	for _, g := range market.Groups() {
		var models []*statemodel.Model
		for _, id := range g.Members {
			spec, _ := market.ByID(id)
			app, err := parseSpec(spec)
			if err != nil {
				return nil, err
			}
			m, err := statemodel.Build(app)
			if err != nil {
				return nil, err
			}
			models = append(models, m)
		}
		start := time.Now()
		u, err := statemodel.Union(models...)
		if err != nil {
			// Members abstracted a shared numeric attribute
			// differently; the joint re-extraction (what
			// core.AnalyzeApps does) is the supported path there.
			t.AddRow(g.ID, len(models), "-", "-", "joint re-extraction required")
			continue
		}
		el := time.Since(start)
		t.AddRow(g.ID, len(models), len(u.States), len(u.Transitions),
			fmt.Sprintf("%.2fms", float64(el.Microseconds())/1000))
	}
	t.Note("paper: 30 interacting apps (avg 64 states) unioned in 4±2.1 s on a 2.6GHz laptop")
	return t, nil
}

// VerificationTiming reproduces §6.3's property-verification
// measurement across the three engines (explicit, BDD-symbolic, and
// SAT/BMC).
func VerificationTiming() (*report.Table, error) {
	t := &report.Table{
		Title:   "Property verification overhead (paper §6.3)",
		Headers: []string{"Model", "States", "Formula", "Explicit", "BDD", "BMC"},
	}
	cases := []struct {
		ids     []string
		formula string
	}{
		{[]string{"O2"}, `AG ("ev:smokeDetector.smoke.detected" -> "alarm.alarm=siren")`},
		{[]string{"O5"}, `AG ("ev:waterSensor.water.wet" -> "valve.valve=closed")`},
		{[]string{"O1"}, `AG ("ev:smokeDetector.smoke.detected" -> "alarm.alarm=siren")`},
		{market.Groups()[0].Members, `AG ("ev:contactSensor.contact.open" -> EF "switch.switch=on")`},
	}
	for _, c := range cases {
		var apps []*ir.App
		for _, id := range c.ids {
			spec, _ := market.ByID(id)
			app, err := parseSpec(spec)
			if err != nil {
				return nil, err
			}
			apps = append(apps, app)
		}
		m, err := statemodel.Build(apps...)
		if err != nil {
			return nil, err
		}
		k := kripke.FromModel(m)
		f := ctl.MustParse(c.formula)

		t0 := time.Now()
		modelcheck.Check(k, f)
		explicit := time.Since(t0)

		t1 := time.Now()
		symbolic.New(k).Check(f)
		bddTime := time.Since(t1)

		bmcCell := "n/a"
		t2 := time.Now()
		if _, handled := bmc.CheckAG(k, f, 10); handled {
			bmcCell = fmt.Sprintf("%.3fms", float64(time.Since(t2).Microseconds())/1000)
		}
		t.AddRow(strings.Join(c.ids, "+"), len(m.States), c.formula,
			fmt.Sprintf("%.3fms", float64(explicit.Microseconds())/1000),
			fmt.Sprintf("%.3fms", float64(bddTime.Microseconds())/1000),
			bmcCell)
	}
	t.Note("paper: verification takes on the order of milliseconds per property")
	return t, nil
}

// AblationPredicateLabels measures the spurious findings produced when
// transition labels carry only events (the paper's earlier imprecise
// design, §4.2).
func AblationPredicateLabels() (*report.Table, error) {
	t := &report.Table{
		Title:   "Ablation: predicate-labeled transitions vs event-only labels",
		Headers: []string{"App", "Violations (full)", "Violations (event-only)", "Spurious"},
	}
	ids := []string{"O15", "O17", "O22", "O24", "TP15", "TP16", "TP23"}
	for _, id := range ids {
		spec, _ := market.ByID(id)
		app, err := parseSpec(spec)
		if err != nil {
			return nil, err
		}
		count := func(opt statemodel.Options) (int, error) {
			m, err := statemodel.BuildOpt(opt, app)
			if err != nil {
				return 0, err
			}
			k := kripke.FromModel(m)
			vs := properties.CheckGeneral(m)
			vs = append(vs, properties.CheckAppSpecific(m, k)...)
			return len(vs), nil
		}
		full, err := count(statemodel.Options{})
		if err != nil {
			return nil, err
		}
		eventOnly, err := count(statemodel.Options{EventOnlyLabels: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(id, full, eventOnly, eventOnly-full)
	}
	t.Note("event-only labels reintroduce the false positives the paper's path-sensitive labels eliminate")
	return t, nil
}

// AblationPathMerging measures how many explored paths ESP merging
// collapses (§4.2.2's path-explosion mitigation).
func AblationPathMerging() (*report.Table, error) {
	t := &report.Table{
		Title:   "Ablation: ESP path merging",
		Headers: []string{"App", "Entry", "Explored", "After merge", "Merged away"},
	}
	// The paper's running examples carry the notification branches
	// (contact book / SMS fallbacks) that ESP merging collapses.
	rows := []struct{ id, src string }{
		{"Water-Leak-Detector", paperapps.WaterLeakDetector},
		{"Thermostat-Energy-Control", paperapps.ThermostatEnergyControl},
		{"Smoke-Alarm", paperapps.SmokeAlarm},
	}
	for _, rw := range rows {
		app, err := ir.BuildSource(rw.id, rw.src)
		if err != nil {
			return nil, err
		}
		for _, r := range symexec.ExecuteAll(app) {
			t.AddRow(rw.id, r.Entry.Sub.Handler, r.Explored, len(r.Paths), r.Merged)
		}
	}
	for _, id := range []string{"O1", "O15"} {
		spec, _ := market.ByID(id)
		app, err := parseSpec(spec)
		if err != nil {
			return nil, err
		}
		for _, r := range symexec.ExecuteAll(app) {
			t.AddRow(id, r.Entry.Sub.Handler, r.Explored, len(r.Paths), r.Merged)
		}
	}
	return t, nil
}
