package ir

import (
	"github.com/soteria-analysis/soteria/internal/groovy"
)

// ReflectionTargets performs the string analysis the paper's §7 plans
// as future work: for a call by reflection `"$name"()`, it statically
// collects the possible values of the interpolated variable and, when
// every assignment to it in the app is a compile-time constant,
// returns the resolved target-method names. ok=false means the value
// set could not be bounded (e.g. it flows from httpGet) and the caller
// must fall back to the all-methods over-approximation (§4.2.3).
func ReflectionTargets(app *App, gs *groovy.GStringLit) ([]string, bool) {
	// Fully static callee: a single known name.
	if name, static := gs.StaticText(); static {
		return []string{name}, true
	}
	// Supported shape: optional literal prefix/suffix around exactly
	// one interpolated expression ("pre${v}post").
	prefix, suffix := "", ""
	var expr groovy.Expr
	for _, part := range gs.Parts {
		if !part.IsExpr {
			if expr == nil {
				prefix += part.Text
			} else {
				suffix += part.Text
			}
			continue
		}
		if expr != nil {
			return nil, false // two interpolations: give up
		}
		expr = part.Expr
	}
	if expr == nil {
		return nil, false
	}
	values, ok := possibleStringValues(app, expr)
	if !ok || len(values) == 0 {
		return nil, false
	}
	out := make([]string, 0, len(values))
	for _, v := range values {
		out = append(out, prefix+v+suffix)
	}
	return out, true
}

// possibleStringValues bounds the compile-time string values an
// expression can take: constants directly, or — for a local/state
// variable — the set of constant right-hand sides assigned to it
// anywhere in the app, provided no assignment is non-constant and the
// name is not externally supplied (parameter or user input).
func possibleStringValues(app *App, e groovy.Expr) ([]string, bool) {
	if s, ok := groovy.StringValue(e); ok {
		return []string{s}, true
	}
	var match func(lhs groovy.Expr) bool
	switch x := e.(type) {
	case *groovy.Ident:
		name := x.Name
		if _, isPerm := app.PermissionByHandle(name); isPerm {
			return nil, false // install-time value: unbounded
		}
		for _, m := range app.File.Methods {
			for _, p := range m.Params {
				if p == name {
					return nil, false // caller-supplied: unbounded here
				}
			}
		}
		match = func(lhs groovy.Expr) bool {
			id, ok := lhs.(*groovy.Ident)
			return ok && id.Name == name
		}
	case *groovy.PropExpr:
		field, ok := StateFieldRef(x)
		if !ok {
			return nil, false
		}
		match = func(lhs groovy.Expr) bool {
			f, ok := StateFieldRef(lhs)
			return ok && f == field
		}
	default:
		return nil, false
	}

	var values []string
	bounded := true
	seen := map[string]bool{}
	add := func(rhs groovy.Expr) {
		if s, ok := groovy.StringValue(rhs); ok {
			if !seen[s] {
				seen[s] = true
				values = append(values, s)
			}
			return
		}
		bounded = false
	}
	groovy.WalkFile(app.File, func(n groovy.Node) bool {
		switch s := n.(type) {
		case *groovy.AssignStmt:
			if s.Op == groovy.ASSIGN && match(s.LHS) {
				add(s.RHS)
			} else if match(s.LHS) {
				bounded = false // += etc.
			}
		case *groovy.DeclStmt:
			if id, ok := e.(*groovy.Ident); ok && s.Name == id.Name && s.Init != nil {
				add(s.Init)
			}
		}
		return true
	})
	if !bounded {
		return nil, false
	}
	return values, true
}
