// Package ir builds Soteria's intermediate representation from a
// parsed SmartThings app (paper §4.1, Fig. 4/5).
//
// The IR captures the app lifecycle as three blocks:
//
//   - Permissions: the devices and user inputs granted to the app
//     (from the preferences/input declarations),
//   - Events/Actions: the event subscriptions binding device or
//     abstract events to handler methods,
//   - Call graphs: one per entry point, rooted at the handler (a
//     "dummy main" per the paper), with call-by-reflection
//     over-approximated to all app methods.
//
// Everything not relevant to property analysis (definition metadata,
// logging, notification plumbing) is identified here so later stages
// can abstract it away.
package ir

import (
	"fmt"
	"sort"
	"strings"

	"github.com/soteria-analysis/soteria/internal/capability"
	"github.com/soteria-analysis/soteria/internal/groovy"
)

// PermKind distinguishes device grants from user inputs.
type PermKind int

const (
	// Device permissions grant access to a physical device through a
	// capability.
	Device PermKind = iota
	// UserInput permissions collect a value from the user at install
	// time (numbers, phone, time, enum, ...).
	UserInput
)

func (k PermKind) String() string {
	if k == Device {
		return "device"
	}
	return "user_defined"
}

// Permission is one `input` declaration.
type Permission struct {
	Handle   string // identifier the app binds the device/input to
	RawType  string // the declared type string, e.g. "capability.switch"
	Kind     PermKind
	Cap      *capability.Capability // resolved capability (Kind==Device)
	Title    string
	Required bool
	Multiple bool
	Pos      groovy.Pos
}

// EventKind classifies the source of an entry point's triggering event.
type EventKind int

const (
	// DeviceEvent is a device attribute change (e.g. "water.wet").
	DeviceEvent EventKind = iota
	// ModeEvent is a location mode change.
	ModeEvent
	// AppTouchEvent is the user tapping the app icon.
	AppTouchEvent
	// TimerEvent is a scheduled callback (runIn/schedule/runEvery*).
	TimerEvent
)

func (k EventKind) String() string {
	switch k {
	case DeviceEvent:
		return "device"
	case ModeEvent:
		return "mode"
	case AppTouchEvent:
		return "app-touch"
	case TimerEvent:
		return "timer"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Subscription is one entry in the events/actions block.
type Subscription struct {
	Handle  string // device handle; "location"/"app" for abstract events
	Attr    string // subscribed attribute ("smoke", "mode", "water", ...)
	Value   string // specific value for "attr.value" subscriptions; "" = all
	Handler string // handler method name
	Kind    EventKind
	Pos     groovy.Pos
}

// EventLabel renders the subscription's event in the paper's notation,
// e.g. "smoke_detector.smoke", "water_sensor.water.wet", "mode",
// "app touch", "timer".
func (s Subscription) EventLabel() string {
	switch s.Kind {
	case ModeEvent:
		if s.Value != "" {
			return "mode." + s.Value
		}
		return "mode"
	case AppTouchEvent:
		return "app touch"
	case TimerEvent:
		if s.Value != "" {
			return "timer." + s.Value
		}
		return "timer"
	}
	l := s.Handle + "." + s.Attr
	if s.Value != "" {
		l += "." + s.Value
	}
	return l
}

// CallGraph is the per-entry-point call graph (paper §4.1). Nodes are
// method names; the root is the entry point's handler.
type CallGraph struct {
	Root  string
	Edges map[string][]string // caller -> callees, deterministic order
	// Reflective records call-by-reflection sites: caller methods that
	// contain a `"$name"()` call whose target set was over-approximated
	// to all app methods.
	Reflective []string
}

// Reachable returns the methods reachable from the root (including the
// root), in deterministic (BFS, then name) order.
func (g *CallGraph) Reachable() []string {
	seen := map[string]bool{g.Root: true}
	order := []string{g.Root}
	queue := []string{g.Root}
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		for _, c := range g.Edges[m] {
			if !seen[c] {
				seen[c] = true
				order = append(order, c)
				queue = append(queue, c)
			}
		}
	}
	return order
}

// EntryPoint is one dummy-main: an event subscription plus the handler
// method and its call graph.
type EntryPoint struct {
	Sub       Subscription
	Handler   *groovy.MethodDecl
	CallGraph *CallGraph
}

// App is the complete IR of a single SmartThings app.
type App struct {
	Name          string
	File          *groovy.File
	Definition    map[string]string // definition(...) metadata
	Permissions   []Permission
	Subscriptions []Subscription
	EntryPoints   []*EntryPoint
	// StateFields are the fields of the persistent state/atomicState
	// objects referenced anywhere in the app (§4.2.3, field-sensitive
	// analysis of state variables).
	StateFields []string
	// UsesReflection is set when any method contains a call by
	// reflection ("$name"()).
	UsesReflection bool
	// Warnings collects non-fatal extraction diagnostics (unknown
	// capabilities, unresolved handlers, ...).
	Warnings []string
}

// PermissionByHandle returns the permission bound to the given handle.
func (a *App) PermissionByHandle(h string) (*Permission, bool) {
	for i := range a.Permissions {
		if a.Permissions[i].Handle == h {
			return &a.Permissions[i], true
		}
	}
	return nil, false
}

// Devices returns the device permissions only.
func (a *App) Devices() []Permission {
	var out []Permission
	for _, p := range a.Permissions {
		if p.Kind == Device {
			out = append(out, p)
		}
	}
	return out
}

// UserInputs returns the user-input permissions only.
func (a *App) UserInputs() []Permission {
	var out []Permission
	for _, p := range a.Permissions {
		if p.Kind == UserInput {
			out = append(out, p)
		}
	}
	return out
}

// Capabilities returns the set of capability names the app's devices
// grant, sorted.
func (a *App) Capabilities() []string {
	set := map[string]bool{}
	for _, p := range a.Devices() {
		if p.Cap != nil {
			set[p.Cap.Name] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// HasCapability reports whether any device permission grants cap.
func (a *App) HasCapability(cap string) bool {
	for _, p := range a.Devices() {
		if p.Cap != nil && p.Cap.Name == cap {
			return true
		}
	}
	return false
}

// SubscribesToMode reports whether the app subscribes to location mode
// changes (directly or by changing location mode itself).
func (a *App) SubscribesToMode() bool {
	for _, s := range a.Subscriptions {
		if s.Kind == ModeEvent {
			return true
		}
	}
	return false
}

// lifecycleMethods are SmartThings-managed methods that are not event
// handlers themselves.
var lifecycleMethods = map[string]bool{
	"installed": true, "updated": true, "initialize": true,
	"uninstalled": true,
}

// platformCalls are SmartThings API calls that are not app-method
// calls; they are excluded from call graphs.
var platformCalls = map[string]bool{
	"subscribe": true, "unsubscribe": true, "schedule": true,
	"unschedule": true, "runIn": true, "runOnce": true,
	"sendPush": true, "sendSms": true, "sendNotificationToContacts": true,
	"sendNotificationEvent": true, "sendEvent": true, "httpGet": true,
	"httpPost": true, "now": true, "definition": true,
	"preferences": true, "section": true, "input": true, "log": true,
	"setLocationMode": true, "sendLocationEvent": true, "timeOfDayIsBetween": true,
	"getSunriseAndSunset": true, "runEvery1Minute": true,
	"runEvery5Minutes": true, "runEvery15Minutes": true,
	"runEvery30Minutes": true, "runEvery1Hour": true, "runEvery3Hours": true,
	"paragraph": true, "href": true, "page": true, "dynamicPage": true,
	"sendPushMessage": true, "canSchedule": true, "parseJson": true,
}

// Build extracts the IR from a parsed app.
func Build(f *groovy.File) *App {
	a := &App{
		Name:       f.Name,
		File:       f,
		Definition: map[string]string{},
	}
	b := &builder{app: a}
	b.collectDefinition()
	b.collectPermissions()
	b.collectStateFields()
	b.collectSubscriptions()
	b.buildEntryPoints()
	return a
}

// BuildSource parses src and builds its IR, joining parse errors into
// err while still returning a best-effort IR.
func BuildSource(name, src string) (*App, error) {
	f, err := groovy.Parse(name, src)
	app := Build(f)
	return app, err
}

type builder struct {
	app *App
}

func (b *builder) warnf(format string, args ...any) {
	b.app.Warnings = append(b.app.Warnings, fmt.Sprintf(format, args...))
}

// collectDefinition records definition(...) metadata (name, category,
// description). The metadata is abstracted away from analysis but is
// used for reporting (Table 2 groups apps by functionality category).
func (b *builder) collectDefinition() {
	for _, s := range b.app.File.Stmts {
		es, ok := s.(*groovy.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*groovy.CallExpr)
		if !ok || call.Name != "definition" {
			continue
		}
		for _, na := range call.NamedArgs {
			if v, ok := groovy.StringValue(na.Value); ok {
				b.app.Definition[na.Key] = v
			}
		}
		if n := b.app.Definition["name"]; n != "" && b.app.Name == "" {
			b.app.Name = n
		}
	}
}

// collectPermissions walks every top-level statement (preferences
// blocks, pages) for input declarations.
func (b *builder) collectPermissions() {
	seen := map[string]bool{}
	for _, s := range b.app.File.Stmts {
		groovy.Walk(s, func(n groovy.Node) bool {
			call, ok := n.(*groovy.CallExpr)
			if !ok || call.Name != "input" {
				return true
			}
			p, ok := b.parseInput(call)
			if ok && !seen[p.Handle] {
				seen[p.Handle] = true
				b.app.Permissions = append(b.app.Permissions, p)
			}
			return true
		})
	}
}

func (b *builder) parseInput(call *groovy.CallExpr) (Permission, bool) {
	p := Permission{Pos: call.Pos}
	// Positional form: input "handle", "type", named... — or fully
	// named: input(name: "x", type: "number").
	if len(call.Args) >= 1 {
		if h, ok := groovy.StringValue(call.Args[0]); ok {
			p.Handle = h
		}
	}
	if len(call.Args) >= 2 {
		if t, ok := groovy.StringValue(call.Args[1]); ok {
			p.RawType = t
		}
	}
	for _, na := range call.NamedArgs {
		switch na.Key {
		case "name":
			if v, ok := groovy.StringValue(na.Value); ok && p.Handle == "" {
				p.Handle = v
			}
		case "type":
			if v, ok := groovy.StringValue(na.Value); ok && p.RawType == "" {
				p.RawType = v
			}
		case "title":
			if v, ok := groovy.StringValue(na.Value); ok {
				p.Title = v
			}
		case "required":
			if bv, ok := na.Value.(*groovy.BoolLit); ok {
				p.Required = bv.Value
			}
		case "multiple":
			if bv, ok := na.Value.(*groovy.BoolLit); ok {
				p.Multiple = bv.Value
			}
		}
	}
	if p.Handle == "" || p.RawType == "" {
		if p.Handle == "" {
			b.warnf("%s: input with no handle ignored", call.Pos)
			return p, false
		}
		// `input "recipients", "contact"` style always has a type; a
		// missing type means a page-level decoration — ignore.
		b.warnf("%s: input %q with no type ignored", call.Pos, p.Handle)
		return p, false
	}
	if cp, ok := capability.ForInputType(p.RawType); ok {
		p.Kind = Device
		p.Cap = cp
		return p, true
	}
	if capability.IsUserInputType(p.RawType) {
		p.Kind = UserInput
		return p, true
	}
	if strings.HasPrefix(p.RawType, "capability.") {
		b.warnf("%s: unknown capability %q for input %q", call.Pos, p.RawType, p.Handle)
		return p, false
	}
	// Device-type inputs ("device.switch") and anything else are
	// treated as user inputs so the handle is at least known.
	p.Kind = UserInput
	return p, true
}

// collectStateFields finds all state.X / atomicState.X field accesses.
func (b *builder) collectStateFields() {
	set := map[string]bool{}
	groovy.WalkFile(b.app.File, func(n groovy.Node) bool {
		pe, ok := n.(*groovy.PropExpr)
		if !ok {
			return true
		}
		if id, ok := pe.Recv.(*groovy.Ident); ok && (id.Name == "state" || id.Name == "atomicState") {
			set[pe.Name] = true
		}
		return true
	})
	for f := range set {
		b.app.StateFields = append(b.app.StateFields, f)
	}
	sort.Strings(b.app.StateFields)
}

// collectSubscriptions finds subscribe(...) and scheduling calls in
// every method (apps typically subscribe inside initialize()).
func (b *builder) collectSubscriptions() {
	for _, m := range b.app.File.Methods {
		groovy.Walk(m, func(n groovy.Node) bool {
			call, ok := n.(*groovy.CallExpr)
			if !ok {
				return true
			}
			switch call.Name {
			case "subscribe":
				b.parseSubscribe(call)
			case "schedule", "runIn", "runOnce",
				"runEvery1Minute", "runEvery5Minutes", "runEvery15Minutes",
				"runEvery30Minutes", "runEvery1Hour", "runEvery3Hours":
				b.parseTimer(call)
			}
			return true
		})
	}
}

func handlerName(e groovy.Expr) (string, bool) {
	switch x := e.(type) {
	case *groovy.Ident:
		return x.Name, true
	case *groovy.StringLit:
		return x.Value, true
	case *groovy.GStringLit:
		return x.StaticText()
	}
	return "", false
}

func (b *builder) parseSubscribe(call *groovy.CallExpr) {
	if len(call.Args) < 2 {
		b.warnf("%s: malformed subscribe ignored", call.Pos)
		return
	}
	sub := Subscription{Pos: call.Pos}
	handle, ok := call.Args[0].(*groovy.Ident)
	if !ok {
		b.warnf("%s: subscribe with non-identifier device ignored", call.Pos)
		return
	}
	sub.Handle = handle.Name

	// Two- or three-argument form: subscribe(app, touchHandler) vs
	// subscribe(dev, "attr[.value]", handler).
	var handlerArg groovy.Expr
	if len(call.Args) == 2 {
		handlerArg = call.Args[1]
	} else {
		handlerArg = call.Args[2]
		ev, ok := groovy.StringValue(call.Args[1])
		if !ok {
			b.warnf("%s: subscribe with dynamic event name ignored", call.Pos)
			return
		}
		if i := strings.Index(ev, "."); i >= 0 {
			sub.Attr, sub.Value = ev[:i], ev[i+1:]
		} else {
			sub.Attr = ev
		}
	}
	h, ok := handlerName(handlerArg)
	if !ok {
		b.warnf("%s: subscribe with dynamic handler ignored", call.Pos)
		return
	}
	sub.Handler = h

	// Deduplicate: installed() and updated() routinely register the
	// same subscriptions.
	for _, s := range b.app.Subscriptions {
		if s.Handle == sub.Handle && s.Attr == sub.Attr && s.Value == sub.Value && s.Handler == sub.Handler {
			return
		}
	}

	switch sub.Handle {
	case "location":
		sub.Kind = ModeEvent
		if sub.Attr == "" {
			sub.Attr = "mode"
		}
	case "app":
		sub.Kind = AppTouchEvent
		sub.Attr = "touch"
	default:
		sub.Kind = DeviceEvent
		if _, ok := b.app.PermissionByHandle(sub.Handle); !ok {
			b.warnf("%s: subscribe references undeclared device %q", call.Pos, sub.Handle)
		}
	}
	b.app.Subscriptions = append(b.app.Subscriptions, sub)
}

func (b *builder) parseTimer(call *groovy.CallExpr) {
	// schedule(timeExpr, handler) / runIn(seconds, handler) /
	// runEveryXMinutes(handler).
	var handlerArg groovy.Expr
	switch len(call.Args) {
	case 0:
		return
	case 1:
		handlerArg = call.Args[0]
	default:
		handlerArg = call.Args[1]
	}
	h, ok := handlerName(handlerArg)
	if !ok {
		b.warnf("%s: %s with dynamic handler ignored", call.Pos, call.Name)
		return
	}
	// Deduplicate: runIn is often re-armed in several places.
	for _, s := range b.app.Subscriptions {
		if s.Kind == TimerEvent && s.Handler == h {
			return
		}
	}
	// Each scheduled handler is its own event: two different schedules
	// firing are distinct occurrences (a sunrise job and a sunset job
	// never race with each other).
	b.app.Subscriptions = append(b.app.Subscriptions, Subscription{
		Handle: "timer", Attr: "time", Value: h, Handler: h, Kind: TimerEvent, Pos: call.Pos,
	})
}

// buildEntryPoints creates one entry point (dummy main) per
// subscription whose handler method exists, each with its call graph.
func (b *builder) buildEntryPoints() {
	for _, sub := range b.app.Subscriptions {
		h := b.app.File.MethodByName(sub.Handler)
		if h == nil {
			b.warnf("%s: handler %q not found", sub.Pos, sub.Handler)
			continue
		}
		cg := b.buildCallGraph(sub.Handler)
		if len(cg.Reflective) > 0 {
			b.app.UsesReflection = true
		}
		b.app.EntryPoints = append(b.app.EntryPoints, &EntryPoint{
			Sub: sub, Handler: h, CallGraph: cg,
		})
	}
	// Reflection anywhere in the app is recorded even if the method is
	// not reachable from a subscription (conservative flag).
	groovy.WalkFile(b.app.File, func(n groovy.Node) bool {
		if c, ok := n.(*groovy.CallExpr); ok && c.Dynamic != nil {
			b.app.UsesReflection = true
		}
		return true
	})
}

// buildCallGraph constructs the call graph rooted at the handler.
// Direct calls resolve to same-named app methods; reflection calls
// with a non-static callee add edges to every app method (the paper's
// safe over-approximation, §4.2.3).
func (b *builder) buildCallGraph(root string) *CallGraph {
	g := &CallGraph{Root: root, Edges: map[string][]string{}}
	var allMethods []string
	for _, m := range b.app.File.Methods {
		allMethods = append(allMethods, m.Name)
	}
	visited := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		if visited[name] {
			return
		}
		visited[name] = true
		m := b.app.File.MethodByName(name)
		if m == nil {
			return
		}
		calleeSet := map[string]bool{}
		var callees []string
		addCallee := func(c string) {
			if c == name || calleeSet[c] {
				return
			}
			calleeSet[c] = true
			callees = append(callees, c)
		}
		groovy.Walk(m, func(n groovy.Node) bool {
			call, ok := n.(*groovy.CallExpr)
			if !ok {
				return true
			}
			if call.Dynamic != nil {
				// Reflection: the string analysis (ReflectionTargets)
				// bounds the callee set where possible; otherwise
				// every app method is a target — the paper's safe
				// over-approximation.
				if gs, ok := call.Dynamic.(*groovy.GStringLit); ok {
					if targets, resolved := ReflectionTargets(b.app, gs); resolved {
						for _, tgt := range targets {
							if b.app.File.MethodByName(tgt) != nil {
								addCallee(tgt)
							}
						}
						return true
					}
				}
				g.Reflective = append(g.Reflective, name)
				for _, c := range allMethods {
					addCallee(c)
				}
				return true
			}
			if call.Recv != nil || call.Name == "" || platformCalls[call.Name] {
				return true
			}
			if b.app.File.MethodByName(call.Name) != nil {
				addCallee(call.Name)
			}
			return true
		})
		g.Edges[name] = callees
		for _, c := range callees {
			visit(c)
		}
	}
	visit(root)
	return g
}

// Print renders the IR in the paper's Fig. 5 textual format.
func Print(a *App) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// IR of %s\n\n// Permissions block\n", a.Name)
	for _, p := range a.Permissions {
		typ := p.RawType
		if p.Cap != nil {
			typ = p.Cap.Name
		}
		fmt.Fprintf(&sb, "input (%s, %s, type:%s)\n", p.Handle, typ, p.Kind)
	}
	sb.WriteString("\n// Events/Actions block\n")
	for _, s := range a.Subscriptions {
		ev := s.Attr
		if s.Value != "" {
			ev += "." + s.Value
		}
		fmt.Fprintf(&sb, "subscribe(%s, %q, %s)\n", s.Handle, ev, s.Handler)
	}
	sb.WriteString("\n// Entry points\n")
	for _, ep := range a.EntryPoints {
		reach := ep.CallGraph.Reachable()
		fmt.Fprintf(&sb, "%s()  // event: %s; reaches: %s\n",
			ep.Sub.Handler, ep.Sub.EventLabel(), strings.Join(reach, ", "))
	}
	return sb.String()
}
