package ir

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/capability"
	"github.com/soteria-analysis/soteria/internal/paperapps"
)

func buildOK(t *testing.T, name, src string) *App {
	t.Helper()
	app, err := BuildSource(name, src)
	if err != nil {
		t.Fatalf("BuildSource(%s): %v", name, err)
	}
	return app
}

func TestSmokeAlarmPermissions(t *testing.T) {
	app := buildOK(t, "smoke-alarm", paperapps.SmokeAlarm)
	// Paper Fig. 5: five devices plus the thrshld user input.
	want := []struct {
		handle string
		kind   PermKind
		cap    string
	}{
		{"smoke_detector", Device, "smokeDetector"},
		{"the_switch", Device, "switch"},
		{"the_alarm", Device, "alarm"},
		{"the_valve", Device, "valve"},
		{"the_battery", Device, "battery"},
		{"thrshld", UserInput, ""},
	}
	if len(app.Permissions) != len(want) {
		t.Fatalf("permissions = %d, want %d: %+v", len(app.Permissions), len(want), app.Permissions)
	}
	for i, w := range want {
		p := app.Permissions[i]
		if p.Handle != w.handle || p.Kind != w.kind {
			t.Errorf("perm %d = %+v, want %+v", i, p, w)
		}
		if w.cap != "" && (p.Cap == nil || p.Cap.Name != w.cap) {
			t.Errorf("perm %d capability = %v, want %s", i, p.Cap, w.cap)
		}
	}
}

func TestSmokeAlarmSubscriptions(t *testing.T) {
	app := buildOK(t, "smoke-alarm", paperapps.SmokeAlarm)
	if len(app.Subscriptions) != 2 {
		t.Fatalf("subscriptions = %+v", app.Subscriptions)
	}
	s0 := app.Subscriptions[0]
	if s0.Handle != "smoke_detector" || s0.Attr != "smoke" || s0.Handler != "smokeHandler" || s0.Kind != DeviceEvent {
		t.Errorf("sub 0 = %+v", s0)
	}
	s1 := app.Subscriptions[1]
	if s1.Handle != "the_battery" || s1.Attr != "battery" || s1.Handler != "batteryHandler" {
		t.Errorf("sub 1 = %+v", s1)
	}
}

func TestSmokeAlarmEntryPointsAndCallGraph(t *testing.T) {
	app := buildOK(t, "smoke-alarm", paperapps.SmokeAlarm)
	if len(app.EntryPoints) != 2 {
		t.Fatalf("entry points = %d", len(app.EntryPoints))
	}
	// batteryHandler calls findBatteryLevel (the p() of Fig. 5).
	var battery *EntryPoint
	for _, ep := range app.EntryPoints {
		if ep.Sub.Handler == "batteryHandler" {
			battery = ep
		}
	}
	if battery == nil {
		t.Fatal("batteryHandler entry point missing")
	}
	reach := battery.CallGraph.Reachable()
	if len(reach) != 2 || reach[0] != "batteryHandler" || reach[1] != "findBatteryLevel" {
		t.Errorf("reachable = %v", reach)
	}
	if app.UsesReflection {
		t.Error("smoke-alarm does not use reflection")
	}
}

func TestWaterLeakSubscriptionWithValue(t *testing.T) {
	app := buildOK(t, "water-leak", paperapps.WaterLeakDetector)
	var sub *Subscription
	for i := range app.Subscriptions {
		if app.Subscriptions[i].Handler == "waterWetHandler" {
			sub = &app.Subscriptions[i]
		}
	}
	if sub == nil {
		t.Fatal("waterWetHandler subscription missing")
	}
	if sub.Attr != "water" || sub.Value != "wet" {
		t.Errorf("sub = %+v", sub)
	}
	if sub.EventLabel() != "water_sensor.water.wet" {
		t.Errorf("label = %s", sub.EventLabel())
	}
}

func TestThermostatModeSubscription(t *testing.T) {
	app := buildOK(t, "thermostat", paperapps.ThermostatEnergyControl)
	var mode *Subscription
	for i := range app.Subscriptions {
		if app.Subscriptions[i].Kind == ModeEvent {
			mode = &app.Subscriptions[i]
		}
	}
	if mode == nil {
		t.Fatal("mode subscription missing")
	}
	if mode.Handler != "modeChangeHandler" || mode.Attr != "mode" {
		t.Errorf("mode sub = %+v", mode)
	}
	if !app.SubscribesToMode() {
		t.Error("SubscribesToMode should be true")
	}
	// modeChangeHandler -> setTemp -> send chain.
	var ep *EntryPoint
	for _, e := range app.EntryPoints {
		if e.Sub.Handler == "modeChangeHandler" {
			ep = e
		}
	}
	reach := ep.CallGraph.Reachable()
	joined := strings.Join(reach, ",")
	if !strings.Contains(joined, "setTemp") || !strings.Contains(joined, "send") {
		t.Errorf("reachable = %v", reach)
	}
}

func TestReflectionOverApproximation(t *testing.T) {
	src := `
preferences {
    section("s") { input "the_alarm", "capability.alarm" }
    section("d") { input "smoke_detector", "capability.smokeDetector" }
}
def installed() {
    subscribe(smoke_detector, "smoke", handler)
}
def handler(evt) {
    "$name"()
}
def foo() { the_alarm.siren() }
def bar() { the_alarm.off() }
`
	app := buildOK(t, "reflect", src)
	if !app.UsesReflection {
		t.Fatal("UsesReflection should be true")
	}
	ep := app.EntryPoints[0]
	reach := strings.Join(ep.CallGraph.Reachable(), ",")
	// Over-approximation: both foo and bar become call targets.
	if !strings.Contains(reach, "foo") || !strings.Contains(reach, "bar") {
		t.Errorf("reachable = %s", reach)
	}
	if len(ep.CallGraph.Reflective) == 0 {
		t.Error("reflective call sites not recorded")
	}
}

func TestStaticReflectionResolvesDirectly(t *testing.T) {
	src := `
def installed() { subscribe(app, touchHandler) }
def touchHandler(evt) {
    "helper"()
}
def helper() { x = 1 }
def unrelated() { y = 2 }
`
	app := buildOK(t, "static-reflect", src)
	ep := app.EntryPoints[0]
	reach := strings.Join(ep.CallGraph.Reachable(), ",")
	if !strings.Contains(reach, "helper") {
		t.Errorf("reachable = %s", reach)
	}
	if strings.Contains(reach, "unrelated") {
		t.Errorf("static reflection should not over-approximate: %s", reach)
	}
}

func TestAppTouchSubscription(t *testing.T) {
	src := `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(app, touchHandler) }
def touchHandler(evt) { sw.on() }
`
	app := buildOK(t, "touch", src)
	if len(app.Subscriptions) != 1 || app.Subscriptions[0].Kind != AppTouchEvent {
		t.Fatalf("subs = %+v", app.Subscriptions)
	}
	if app.Subscriptions[0].EventLabel() != "app touch" {
		t.Errorf("label = %s", app.Subscriptions[0].EventLabel())
	}
}

func TestTimerSubscriptions(t *testing.T) {
	src := `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() {
    schedule("0 0 12 * * ?", noonHandler)
    runIn(60, offHandler)
}
def noonHandler() { sw.on() }
def offHandler() { sw.off() }
`
	app := buildOK(t, "timers", src)
	timers := 0
	for _, s := range app.Subscriptions {
		if s.Kind == TimerEvent {
			timers++
		}
	}
	if timers != 2 {
		t.Errorf("timer subscriptions = %d, want 2", timers)
	}
}

func TestTimerDedup(t *testing.T) {
	src := `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch.on", onHandler) }
def onHandler(evt) {
    runIn(60, offHandler)
    runIn(120, offHandler)
}
def offHandler() { sw.off() }
`
	app := buildOK(t, "timer-dedup", src)
	timers := 0
	for _, s := range app.Subscriptions {
		if s.Kind == TimerEvent {
			timers++
		}
	}
	if timers != 1 {
		t.Errorf("timer subscriptions = %d, want 1 (deduplicated)", timers)
	}
}

func TestStateFieldsCollected(t *testing.T) {
	src := `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch.on", h) }
def h(evt) {
    state.counter = state.counter + 1
    atomicState.lastTime = now()
    if (state.counter > 10) { sw.off() }
}
`
	app := buildOK(t, "state", src)
	if len(app.StateFields) != 2 || app.StateFields[0] != "counter" || app.StateFields[1] != "lastTime" {
		t.Errorf("state fields = %v", app.StateFields)
	}
}

func TestDefinitionMetadata(t *testing.T) {
	app := buildOK(t, "", paperapps.SmokeAlarm)
	if app.Definition["category"] != "Safety & Security" {
		t.Errorf("category = %q", app.Definition["category"])
	}
	if app.Name != "Smoke-Alarm" {
		t.Errorf("name = %q", app.Name)
	}
}

func TestCapabilitiesAndHasCapability(t *testing.T) {
	app := buildOK(t, "thermostat", paperapps.ThermostatEnergyControl)
	caps := app.Capabilities()
	want := []string{"lock", "powerMeter", "switch", "thermostat"}
	if len(caps) != len(want) {
		t.Fatalf("caps = %v, want %v", caps, want)
	}
	for i := range want {
		if caps[i] != want[i] {
			t.Errorf("caps[%d] = %s, want %s", i, caps[i], want[i])
		}
	}
	if !app.HasCapability("lock") || app.HasCapability("valve") {
		t.Error("HasCapability wrong")
	}
}

func TestUndeclaredDeviceWarning(t *testing.T) {
	src := `
def installed() { subscribe(ghost, "switch.on", h) }
def h(evt) { }
`
	app := buildOK(t, "warn", src)
	found := false
	for _, w := range app.Warnings {
		if strings.Contains(w, "undeclared device") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %v", app.Warnings)
	}
}

func TestMissingHandlerWarning(t *testing.T) {
	src := `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch.on", nonexistent) }
`
	app := buildOK(t, "warn2", src)
	if len(app.EntryPoints) != 0 {
		t.Errorf("entry points = %d, want 0", len(app.EntryPoints))
	}
	found := false
	for _, w := range app.Warnings {
		if strings.Contains(w, "not found") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %v", app.Warnings)
	}
}

func TestPrintMatchesPaperFormat(t *testing.T) {
	app := buildOK(t, "smoke-alarm", paperapps.SmokeAlarm)
	out := Print(app)
	for _, want := range []string{
		"input (smoke_detector, smokeDetector, type:device)",
		"input (thrshld, number, type:user_defined)",
		`subscribe(smoke_detector, "smoke", smokeHandler)`,
		`subscribe(the_battery, "battery", batteryHandler)`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("IR print missing %q:\n%s", want, out)
		}
	}
}

func TestDevicesAndUserInputsSplit(t *testing.T) {
	app := buildOK(t, "smoke-alarm", paperapps.SmokeAlarm)
	if len(app.Devices()) != 5 {
		t.Errorf("devices = %d, want 5", len(app.Devices()))
	}
	ins := app.UserInputs()
	if len(ins) != 1 || ins[0].Handle != "thrshld" {
		t.Errorf("user inputs = %+v", ins)
	}
}

func TestPermissionCapabilityResolution(t *testing.T) {
	app := buildOK(t, "water-leak", paperapps.WaterLeakDetector)
	p, ok := app.PermissionByHandle("water_sensor")
	if !ok || p.Cap == nil {
		t.Fatal("water_sensor permission missing")
	}
	attr, ok := p.Cap.Attribute("water")
	if !ok || attr.Kind != capability.Enum {
		t.Errorf("water attribute = %+v", attr)
	}
}

func TestReflectionStringAnalysisBoundsTargets(t *testing.T) {
	// §7 future work: the interpolated variable is only ever assigned
	// constants, so the call-graph targets are exactly {foo, bar} —
	// not every method.
	src := `
preferences { section("s") { input "the_alarm", "capability.alarm" } }
def installed() { subscribe(app, h) }
def h(evt) {
    def action = "foo"
    if (now() > 0) {
        action = "bar"
    }
    "$action"()
}
def foo() { the_alarm.siren() }
def bar() { the_alarm.strobe() }
def unrelated() { the_alarm.off() }
`
	app := buildOK(t, "refined-reflect", src)
	ep := app.EntryPoints[0]
	reach := strings.Join(ep.CallGraph.Reachable(), ",")
	if !strings.Contains(reach, "foo") || !strings.Contains(reach, "bar") {
		t.Errorf("reachable = %s", reach)
	}
	if strings.Contains(reach, "unrelated") {
		t.Errorf("string analysis should exclude unrelated: %s", reach)
	}
	if len(ep.CallGraph.Reflective) != 0 {
		t.Error("bounded reflection should not be recorded as over-approximated")
	}
}

func TestReflectionUnboundedValueStillOverApproximates(t *testing.T) {
	// The App5 pattern: the name flows from httpGet — the string
	// analysis must give up and keep the safe over-approximation.
	src := `
preferences { section("s") { input "the_alarm", "capability.alarm" } }
def installed() { subscribe(app, h) }
def h(evt) {
    httpGet("http://x") { resp ->
        state.m = resp.data.toString()
    }
    "${state.m}"()
}
def foo() { the_alarm.siren() }
def bar() { the_alarm.off() }
`
	app := buildOK(t, "unbounded-reflect", src)
	ep := app.EntryPoints[0]
	reach := strings.Join(ep.CallGraph.Reachable(), ",")
	if !strings.Contains(reach, "foo") || !strings.Contains(reach, "bar") {
		t.Errorf("reachable = %s", reach)
	}
	if len(ep.CallGraph.Reflective) == 0 {
		t.Error("unbounded reflection must be recorded")
	}
}

func TestReflectionStateFieldConstants(t *testing.T) {
	// state.mode is assigned only constants: targets bounded.
	src := `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch.on", h) }
def h(evt) {
    state.mode = "enable"
    "${state.mode}Switch"()
}
def enableSwitch() { sw.on() }
def disableSwitch() { sw.off() }
`
	app := buildOK(t, "state-reflect", src)
	ep := app.EntryPoints[0]
	reach := strings.Join(ep.CallGraph.Reachable(), ",")
	if !strings.Contains(reach, "enableSwitch") {
		t.Errorf("reachable = %s", reach)
	}
	if strings.Contains(reach, "disableSwitch") {
		t.Errorf("suffix concatenation should bound targets: %s", reach)
	}
}
