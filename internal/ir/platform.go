package ir

import (
	"strings"
	"unicode"

	"github.com/soteria-analysis/soteria/internal/groovy"
)

// DeviceRead recognises the SmartThings interfaces that read a device
// attribute value (paper §4.2.3, "Platform-specific Interfaces"):
//
//	dev.currentValue("attr")
//	dev.currentState("attr")         // .value wrapper also accepted
//	dev.currentAttr                  // e.g. dev.currentTemperature
//	dev.latestValue("attr")
//
// plus numeric conversion wrappers around any of them (.integerValue,
// .floatValue, .toInteger(), .toFloat(), .toDouble()). It returns the
// device handle and attribute read, with ok=false when e is not a
// device read on a declared device of the app.
func DeviceRead(app *App, e groovy.Expr) (handle, attr string, ok bool) {
	e = unwrapConversions(e)
	switch x := e.(type) {
	case *groovy.CallExpr:
		recv, isIdent := x.Recv.(*groovy.Ident)
		if !isIdent {
			return "", "", false
		}
		switch x.Name {
		case "currentValue", "currentState", "latestValue", "latestState":
			if len(x.Args) != 1 {
				return "", "", false
			}
			a, isStr := groovy.StringValue(x.Args[0])
			if !isStr {
				return "", "", false
			}
			if !app.isDeviceHandle(recv.Name) {
				return "", "", false
			}
			return recv.Name, a, true
		}
	case *groovy.PropExpr:
		recv, isIdent := x.Recv.(*groovy.Ident)
		if !isIdent {
			return "", "", false
		}
		if strings.HasPrefix(x.Name, "current") && len(x.Name) > len("current") {
			if !app.isDeviceHandle(recv.Name) {
				return "", "", false
			}
			return recv.Name, lowerFirst(strings.TrimPrefix(x.Name, "current")), true
		}
	}
	return "", "", false
}

// unwrapConversions strips numeric conversion wrappers and the .value
// accessor of currentState results.
func unwrapConversions(e groovy.Expr) groovy.Expr {
	for {
		switch x := e.(type) {
		case *groovy.PropExpr:
			switch x.Name {
			case "integerValue", "floatValue", "doubleValue", "value":
				e = x.Recv
				continue
			}
		case *groovy.CallExpr:
			switch x.Name {
			case "toInteger", "toFloat", "toDouble", "toBigDecimal":
				if x.Recv != nil {
					e = x.Recv
					continue
				}
			}
		}
		return e
	}
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	r := []rune(s)
	r[0] = unicode.ToLower(r[0])
	return string(r)
}

func (a *App) isDeviceHandle(name string) bool {
	p, ok := a.PermissionByHandle(name)
	return ok && p.Kind == Device
}

// StateFieldRef recognises state.X / atomicState.X accesses and
// returns the field name.
func StateFieldRef(e groovy.Expr) (field string, ok bool) {
	pe, isProp := e.(*groovy.PropExpr)
	if !isProp {
		return "", false
	}
	id, isIdent := pe.Recv.(*groovy.Ident)
	if !isIdent {
		return "", false
	}
	if id.Name == "state" || id.Name == "atomicState" {
		return pe.Name, true
	}
	return "", false
}

// DeviceAction recognises a device action call `handle.command(args)`
// on a declared device, or the abstract setLocationMode action.
// It returns the device permission and the command name.
func DeviceAction(app *App, e groovy.Expr) (perm *Permission, command string, call *groovy.CallExpr, ok bool) {
	c, isCall := e.(*groovy.CallExpr)
	if !isCall {
		return nil, "", nil, false
	}
	if c.Recv == nil {
		// Abstract action: setLocationMode("home").
		if c.Name == "setLocationMode" || c.Name == "sendLocationEvent" {
			return nil, "setLocationMode", c, true
		}
		return nil, "", nil, false
	}
	recv, isIdent := c.Recv.(*groovy.Ident)
	if !isIdent {
		return nil, "", nil, false
	}
	p, found := app.PermissionByHandle(recv.Name)
	if !found || p.Kind != Device || p.Cap == nil {
		return nil, "", nil, false
	}
	if _, isCmd := p.Cap.Command(c.Name); !isCmd {
		return nil, "", nil, false
	}
	return p, c.Name, c, true
}
