package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeTime is an injectable clock + sleep recorder: sleeps advance the
// clock instantly and are logged for assertion.
type fakeTime struct {
	mu     sync.Mutex
	now    time.Time
	slept  []time.Duration
	refuse bool // make sleep fail like a canceled context
}

func (f *fakeTime) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeTime) Sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refuse {
		return context.Canceled
	}
	f.slept = append(f.slept, d)
	f.now = f.now.Add(d)
	return nil
}

func (f *fakeTime) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func (f *fakeTime) Slept() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration{}, f.slept...)
}

// newTestClient wires a client to ts with a deterministic clock and
// jitter pinned to the maximum (jitter() == 1 − ε ≈ full ceiling).
func newTestClient(t *testing.T, ts *httptest.Server, mutate func(*Config)) (*Client, *fakeTime) {
	t.Helper()
	ft := &fakeTime{now: time.Unix(1700000000, 0)}
	cfg := Config{
		BaseURL: ts.URL,
		now:     ft.Now,
		sleep:   ft.Sleep,
		jitter:  func() float64 { return 1.0 },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, ft
}

// scripted serves canned status codes in order, then the last one
// forever, capturing request bodies.
type scripted struct {
	mu     sync.Mutex
	codes  []int
	calls  int
	bodies []string
	hdr    map[string]string
}

func (s *scripted) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		i := s.calls
		s.calls++
		if i >= len(s.codes) {
			i = len(s.codes) - 1
		}
		code := s.codes[i]
		var body []byte
		if r.Body != nil {
			buf := make([]byte, 64<<10)
			n, _ := r.Body.Read(buf)
			body = buf[:n]
		}
		s.bodies = append(s.bodies, string(body))
		hdr := s.hdr
		s.mu.Unlock()
		for k, v := range hdr {
			w.Header().Set(k, v)
		}
		if code >= 400 {
			w.WriteHeader(code)
			w.Write([]byte(`{"error":"scripted failure"}`))
			return
		}
		w.WriteHeader(code)
		w.Write([]byte(`{"job_id":"j1","status":"done"}`))
	}
}

func (s *scripted) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func TestRetriesTransientThenSucceeds(t *testing.T) {
	sc := &scripted{codes: []int{500, 503, 200}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()
	c, ft := newTestClient(t, ts, nil)

	j, err := c.Analyze(context.Background(), AnalyzeRequest{Apps: []App{{Name: "a", Source: "x"}}})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if j.JobID != "j1" || !j.Terminal() {
		t.Fatalf("job: %+v", j)
	}
	if sc.count() != 3 {
		t.Fatalf("attempts = %d, want 3", sc.count())
	}
	// Exponential schedule at full jitter: base, 2*base.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	got := ft.Slept()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("backoffs = %v, want %v", got, want)
	}
}

func TestIdempotencyKeyStableAcrossRetries(t *testing.T) {
	sc := &scripted{codes: []int{500, 200}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()
	c, _ := newTestClient(t, ts, nil)

	if _, err := c.Analyze(context.Background(), AnalyzeRequest{Apps: []App{{Name: "a", Source: "x"}}}); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(sc.bodies) != 2 {
		t.Fatalf("bodies = %d", len(sc.bodies))
	}
	keys := make([]string, 2)
	for i, b := range sc.bodies {
		var req struct {
			IdempotencyKey string `json:"idempotency_key"`
		}
		if err := json.Unmarshal([]byte(b), &req); err != nil {
			t.Fatalf("body %d: %v", i, err)
		}
		keys[i] = req.IdempotencyKey
	}
	if keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("idempotency keys across retries: %q vs %q", keys[0], keys[1])
	}
}

func TestHonorsRetryAfterFloor(t *testing.T) {
	sc := &scripted{codes: []int{429, 200}, hdr: map[string]string{"Retry-After": "3"}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()
	c, ft := newTestClient(t, ts, nil)

	if _, err := c.Analyze(context.Background(), AnalyzeRequest{Apps: []App{{Name: "a", Source: "x"}}}); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	got := ft.Slept()
	if len(got) != 1 || got[0] != 3*time.Second {
		t.Fatalf("backoffs = %v, want [3s] (Retry-After floor over 100ms schedule)", got)
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	sc := &scripted{codes: []int{400}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()
	c, _ := newTestClient(t, ts, nil)

	_, err := c.Analyze(context.Background(), AnalyzeRequest{Apps: []App{{Name: "a", Source: "x"}}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if sc.count() != 1 {
		t.Fatalf("400 was retried: %d attempts", sc.count())
	}
}

func TestDeadlineAwareBackoff(t *testing.T) {
	sc := &scripted{codes: []int{500}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()
	c, ft := newTestClient(t, ts, func(cfg *Config) {
		cfg.BaseBackoff = 2 * time.Second // first backoff exceeds the deadline budget
	})
	// The real deadline also governs the HTTP attempt, so the fake
	// clock must track real time for this test.
	ft.mu.Lock()
	ft.now = time.Now()
	ft.mu.Unlock()

	// Deadline 1s out; the first backoff would be 2s — the client must
	// give up immediately instead of sleeping into a dead context.
	ctx, cancel := context.WithDeadline(context.Background(), ft.Now().Add(time.Second))
	defer cancel()
	_, err := c.Analyze(ctx, AnalyzeRequest{Apps: []App{{Name: "a", Source: "x"}}})
	if err == nil {
		t.Fatalf("expected error")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 500 {
		t.Fatalf("deadline abort must surface the last server error, got %v", err)
	}
	if len(ft.Slept()) != 0 {
		t.Fatalf("slept %v with no room before deadline", ft.Slept())
	}
	if sc.count() != 1 {
		t.Fatalf("attempts = %d, want 1", sc.count())
	}
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	sc := &scripted{codes: []int{500, 500, 200}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()
	c, ft := newTestClient(t, ts, func(cfg *Config) {
		cfg.MaxAttempts = 1
		cfg.BreakerThreshold = 2
		cfg.BreakerCooldown = 10 * time.Second
	})
	ctx := context.Background()
	req := AnalyzeRequest{Apps: []App{{Name: "a", Source: "x"}}}

	for i := 0; i < 2; i++ {
		if _, err := c.Analyze(ctx, req); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	// Threshold reached: the next call must fail fast, no HTTP attempt.
	before := sc.count()
	_, err := c.Analyze(ctx, req)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if sc.count() != before {
		t.Fatalf("open circuit still sent a request")
	}

	// After the cooldown one half-open probe goes through; the healthy
	// response closes the circuit.
	ft.Advance(11 * time.Second)
	if _, err := c.Analyze(ctx, req); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if _, err := c.Analyze(ctx, req); err != nil {
		t.Fatalf("closed circuit: %v", err)
	}
}

func TestWaitPollsToTerminal(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		status := "running"
		if calls >= 3 {
			status = "done"
		}
		json.NewEncoder(w).Encode(map[string]any{"job_id": "j7", "status": status})
	}))
	defer ts.Close()
	c, ft := newTestClient(t, ts, nil)

	j, err := c.Wait(context.Background(), "j7")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if j.Status != "done" || calls != 3 {
		t.Fatalf("status=%s after %d polls", j.Status, calls)
	}
	for _, d := range ft.Slept() {
		if d != 250*time.Millisecond {
			t.Fatalf("poll pacing: %v", ft.Slept())
		}
	}
}

func TestNetworkErrorRetries(t *testing.T) {
	// A server that is immediately closed: every attempt is a transport
	// error, which must retry and count toward the breaker.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()
	ft := &fakeTime{now: time.Unix(1700000000, 0)}
	c, err := New(Config{
		BaseURL: url, MaxAttempts: 3,
		now: ft.Now, sleep: ft.Sleep, jitter: func() float64 { return 1.0 },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, aerr := c.Analyze(context.Background(), AnalyzeRequest{Apps: []App{{Name: "a", Source: "x"}}})
	if aerr == nil {
		t.Fatalf("expected transport failure")
	}
	if got := len(ft.Slept()); got != 2 {
		t.Fatalf("backoffs = %d, want 2 (3 attempts)", got)
	}
}

// TestTraceIDStableAcrossRetries: the client mints one trace ID per
// logical submission and sends it on every attempt's X-Soteria-Trace
// header, so a retried request is one trace in the daemon's logs; the
// echoed ID lands on Job.Trace.
func TestTraceIDStableAcrossRetries(t *testing.T) {
	var (
		mu     sync.Mutex
		traces []string
	)
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		traces = append(traces, r.Header.Get("X-Soteria-Trace"))
		n := calls
		calls++
		mu.Unlock()
		w.Header().Set("X-Soteria-Trace", r.Header.Get("X-Soteria-Trace"))
		if n < 2 {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"scripted failure"}`))
			return
		}
		w.Write([]byte(`{"job_id":"j1","status":"done"}`))
	}))
	defer ts.Close()
	c, _ := newTestClient(t, ts, nil)

	j, err := c.Analyze(context.Background(), AnalyzeRequest{Apps: []App{{Name: "a", Source: "x"}}})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(traces) != 3 {
		t.Fatalf("attempts = %d, want 3", len(traces))
	}
	if traces[0] == "" {
		t.Fatalf("no trace header on first attempt")
	}
	for i, tr := range traces {
		if tr != traces[0] {
			t.Fatalf("attempt %d trace %q != first attempt's %q", i, tr, traces[0])
		}
	}
	if j.Trace != traces[0] {
		t.Fatalf("Job.Trace = %q, want the sent trace %q", j.Trace, traces[0])
	}
}

// TestTimingsFlagOnWire: AnalyzeRequest.Timings reaches the body.
func TestTimingsFlagOnWire(t *testing.T) {
	sc := &scripted{codes: []int{200}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()
	c, _ := newTestClient(t, ts, nil)

	if _, err := c.Analyze(context.Background(), AnalyzeRequest{Apps: []App{{Name: "a", Source: "x"}}, Timings: true}); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	var req struct {
		Timings bool `json:"timings"`
	}
	if err := json.Unmarshal([]byte(sc.bodies[0]), &req); err != nil {
		t.Fatalf("body: %v", err)
	}
	if !req.Timings {
		t.Fatalf("timings flag missing from wire body: %s", sc.bodies[0])
	}
}

// TestRetryAfterForms: both RFC 9110 Retry-After forms parse — plain
// delay-seconds and HTTP-date — and negative or already-past values
// clamp to zero instead of producing a negative backoff floor.
func TestRetryAfterForms(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	cases := []struct {
		name, header string
		want         time.Duration
	}{
		{"absent", "", 0},
		{"seconds", "3", 3 * time.Second},
		{"zero seconds", "0", 0},
		{"negative seconds clamp", "-5", 0},
		{"http-date future", now.Add(5 * time.Second).Format(http.TimeFormat), 5 * time.Second},
		{"http-date past clamp", now.Add(-30 * time.Second).Format(http.TimeFormat), 0},
		{"rfc850 future", now.Add(7 * time.Second).Format("Monday, 02-Jan-06 15:04:05 MST"), 7 * time.Second},
		{"garbage", "soon", 0},
	}
	for _, tc := range cases {
		if got := retryAfter(mk(tc.header), now); got != tc.want {
			t.Errorf("%s: retryAfter(%q) = %v, want %v", tc.name, tc.header, got, tc.want)
		}
	}
	if got := retryAfter(nil, now); got != 0 {
		t.Errorf("nil response: %v, want 0", got)
	}
}

// TestRetryAfterHTTPDateFloorsBackoff: a date-form hint reaches the
// backoff as a floor end to end, like the seconds form always has.
func TestRetryAfterHTTPDateFloorsBackoff(t *testing.T) {
	wall := time.Now()
	sc := &scripted{codes: []int{429, 200},
		hdr: map[string]string{"Retry-After": wall.Add(4 * time.Second).Format(http.TimeFormat)}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()
	c, ft := newTestClient(t, ts, nil)
	// The date is absolute, so the fake clock must sit at real wall time
	// for the subtraction to mean anything.
	ft.mu.Lock()
	ft.now = wall
	ft.mu.Unlock()

	if _, err := c.Analyze(context.Background(), AnalyzeRequest{Apps: []App{{Name: "a", Source: "x"}}}); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	got := ft.Slept()
	if len(got) != 1 || got[0] < 3*time.Second || got[0] > 4*time.Second {
		t.Fatalf("backoffs = %v, want one sleep in [3s, 4s] (HTTP-date floor)", got)
	}
}

// TestBreakerHalfOpenSingleProbe: when the cooldown elapses, exactly
// one of many concurrent callers is admitted as the half-open probe;
// the rest fail fast. Run with -race: the breaker's counters are
// exercised from every goroutine at once.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	br := &breaker{threshold: 2, cooldown: 10 * time.Second}
	t0 := time.Unix(1700000000, 0)
	br.record(false, t0)
	br.record(false, t0) // threshold reached: circuit opens at t0

	if br.allow(t0.Add(time.Second)) {
		t.Fatal("open circuit admitted a request inside the cooldown")
	}

	// Cooldown over: 32 concurrent callers race for the probe slot.
	after := t0.Add(11 * time.Second)
	var wg sync.WaitGroup
	var admitted atomic.Int64
	start := make(chan struct{})
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if br.allow(after) {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := admitted.Load(); n != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", n)
	}

	// The losing callers failed fast without reporting an outcome; the
	// probe's failure re-opens the circuit for another full cooldown...
	br.record(false, after)
	if br.allow(after.Add(5 * time.Second)) {
		t.Fatal("circuit closed after a failed half-open probe")
	}
	// ...and a successful probe closes it for everyone.
	if !br.allow(after.Add(12 * time.Second)) {
		t.Fatal("no probe admitted after the second cooldown")
	}
	br.record(true, after.Add(12*time.Second))
	var open atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !br.allow(after.Add(13 * time.Second)) {
				open.Add(1)
			}
		}()
	}
	wg.Wait()
	if open.Load() != 0 {
		t.Fatalf("%d callers rejected after the breaker closed", open.Load())
	}
}

// TestClientHalfOpenConcurrentCallers: the same single-probe guarantee
// through the public API — concurrent Analyze calls against a healthy
// server after an open circuit's cooldown produce exactly one HTTP
// probe; the losers return ErrCircuitOpen without a request.
func TestClientHalfOpenConcurrentCallers(t *testing.T) {
	var reqs atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		<-release // hold the probe in flight so the race window stays open
		w.Write([]byte(`{"job_id":"j1","status":"done"}`))
	}))
	defer ts.Close()

	ft := &fakeTime{now: time.Unix(1700000000, 0)}
	c, err := New(Config{
		BaseURL: ts.URL, MaxAttempts: 1,
		BreakerThreshold: 1, BreakerCooldown: 10 * time.Second,
		now: ft.Now, sleep: ft.Sleep, jitter: func() float64 { return 1.0 },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Trip the breaker directly: one failure meets the threshold.
	c.br.record(false, ft.Now())

	ft.Advance(11 * time.Second)
	req := AnalyzeRequest{Apps: []App{{Name: "a", Source: "x"}}}
	var wg sync.WaitGroup
	var fastFails atomic.Int64
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Analyze(context.Background(), req)
			if errors.Is(err, ErrCircuitOpen) {
				fastFails.Add(1)
				return
			}
			errs <- err
		}()
	}
	// Let the losers drain, then release the held probe.
	for ft := 0; ft < 200 && fastFails.Load() < 7; ft++ {
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("probe winner failed: %v", err)
		}
	}
	if n := reqs.Load(); n != 1 {
		t.Fatalf("half-open window sent %d HTTP requests, want exactly 1 probe", n)
	}
	if n := fastFails.Load(); n != 7 {
		t.Fatalf("%d callers failed fast, want 7 of 8", n)
	}
}
