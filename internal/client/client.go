// Package client is the resilient Go client for soteriad's HTTP API.
// It layers the retry discipline a crash-safe daemon deserves on the
// caller's side:
//
//   - every logical request carries an idempotency key (auto-generated
//     when the caller supplies none), so retries — including ones that
//     race a daemon restart — never run an analysis twice;
//   - transient failures (network errors, 5xx, 429) retry with
//     exponential backoff, full jitter, and the server's Retry-After
//     hint taken as a floor;
//   - retries are deadline-aware: a backoff that cannot fit before the
//     context's deadline is not slept through, the last error returns
//     immediately instead;
//   - a circuit breaker opens after consecutive transport-level
//     failures (5xx or unreachable), failing fast until a cooldown
//     elapses, then admits one probe (half-open) before closing.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	mrand "math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/soteria-analysis/soteria/internal/obs"
	"github.com/soteria-analysis/soteria/internal/report"
)

// TraceHeader carries the per-job trace ID. The client mints one at
// submission and sends it on every retry attempt, so all server log
// lines for a retried request share one ID; the server echoes the
// adopted ID back on this header.
const TraceHeader = "X-Soteria-Trace"

// ForwardedHeader marks a request that already crossed one
// cluster-routing hop. A daemon receiving it serves the request
// locally whatever the ring says — the guard that makes a routing
// disagreement between two nodes degrade to one extra hop, never a
// forwarding loop.
const ForwardedHeader = "X-Soteria-Forwarded"

// Config configures a Client. The zero value plus a BaseURL is
// serviceable.
type Config struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:7373".
	BaseURL string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per request, first included (default 4).
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps one backoff sleep (default 5s).
	MaxBackoff time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit (default 5; <0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit fails fast before
	// admitting a half-open probe (default 10s).
	BreakerCooldown time.Duration
	// PollInterval paces Wait's job polling (default 250ms).
	PollInterval time.Duration

	// now and sleep are injectable for deterministic tests.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
	// jitter returns a uniform float64 in [0,1).
	jitter func() float64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 250 * time.Millisecond
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.sleep == nil {
		c.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if c.jitter == nil {
		c.jitter = mrand.Float64
	}
	return c
}

// ErrCircuitOpen is returned (wrapped) while the breaker fails fast.
var ErrCircuitOpen = errors.New("client: circuit open")

// APIError is a server-side rejection that exhausted its retries (or
// was not retryable at all).
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("soteriad: %d: %s", e.Status, e.Message)
}

// App is one named Groovy source.
type App struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// Options mirrors the service's request options.
type Options struct {
	General     *bool    `json:"general,omitempty"`
	AppSpecific *bool    `json:"app_specific,omitempty"`
	Taint       *bool    `json:"taint,omitempty"`
	Properties  []string `json:"properties,omitempty"`
	TimeoutMS   int64    `json:"timeout_ms,omitempty"`
	MaxStates   int      `json:"max_states,omitempty"`
	Parallel    int      `json:"parallel,omitempty"`
}

// Job is the wire form of a job's state, shared by submission
// responses and polls.
type Job struct {
	JobID     string         `json:"job_id"`
	Status    string         `json:"status"`
	Poll      string         `json:"poll,omitempty"`
	ElapsedMS int64          `json:"elapsed_ms,omitempty"`
	Key       string         `json:"key,omitempty"`
	Cached    bool           `json:"cached,omitempty"`
	Result    *report.Record `json:"result,omitempty"`
	Error     string         `json:"error,omitempty"`
	Results   []BatchItem    `json:"results,omitempty"`
	// Node is the fleet member that ran the analysis (empty on
	// single-node daemons and locally-served requests).
	Node string `json:"node,omitempty"`

	// Trace is the job's trace ID, taken from the X-Soteria-Trace
	// response header (not the JSON body). Quote it in bug reports: the
	// daemon stamps it on every log line about the job.
	Trace string `json:"-"`
}

// Terminal reports whether the job has finished (well or badly).
func (j *Job) Terminal() bool { return j.Status == "done" || j.Status == "failed" }

// BatchItem is one item's outcome in a batch job.
type BatchItem struct {
	Key    string         `json:"key"`
	Store  string         `json:"store_key"`
	Cached bool           `json:"cached"`
	Result *report.Record `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
	Node   string         `json:"node,omitempty"`
}

// breaker is the consecutive-failure circuit breaker.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	failures  int
	openedAt  time.Time
	halfOpen  bool
}

// allow reports whether a request may proceed.
func (b *breaker) allow(now time.Time) bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failures < b.threshold {
		return true
	}
	if now.Sub(b.openedAt) < b.cooldown {
		return false
	}
	// Cooldown over: admit exactly one probe until it reports back.
	if b.halfOpen {
		return false
	}
	b.halfOpen = true
	return true
}

func (b *breaker) record(ok bool, now time.Time) {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.halfOpen = false
	if ok {
		b.failures = 0
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.openedAt = now
	}
}

// Client talks to one soteriad instance. Safe for concurrent use.
type Client struct {
	cfg Config
	br  *breaker
}

// New returns a Client for the daemon at cfg.BaseURL.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: BaseURL required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	return &Client{
		cfg: cfg,
		br:  &breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
	}, nil
}

// newIdemKey mints a random idempotency key.
func newIdemKey() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("ik-%x", time.Now().UnixNano())
	}
	return "ik-" + hex.EncodeToString(b[:])
}

// analyzeBody is the POST /v1/analyze payload.
type analyzeBody struct {
	Apps           []App    `json:"apps,omitempty"`
	Options        *Options `json:"options,omitempty"`
	Async          bool     `json:"async,omitempty"`
	IdempotencyKey string   `json:"idempotency_key,omitempty"`
	Timings        bool     `json:"timings,omitempty"`
}

// AnalyzeRequest submits one analysis (one app or a multi-app union).
type AnalyzeRequest struct {
	Apps    []App
	Options *Options
	Async   bool
	// IdempotencyKey dedupes resubmissions; "" auto-generates one, so
	// retries within this call are always safe.
	IdempotencyKey string
	// Timings asks the daemon to embed the job's span tree (phase and
	// engine timings, trace ID) in the returned records.
	Timings bool
	// Trace pins the job's trace ID ("" mints one). Cluster routing
	// sets it so one analysis keeps one trace ID across hops.
	Trace string
}

// Analyze submits the request, retrying transient failures, and
// returns the resulting job state (terminal for sync requests, a poll
// handle for async ones).
func (c *Client) Analyze(ctx context.Context, req AnalyzeRequest) (*Job, error) {
	key := req.IdempotencyKey
	if key == "" {
		key = newIdemKey()
	}
	body := analyzeBody{Apps: req.Apps, Options: req.Options, Async: req.Async, IdempotencyKey: key, Timings: req.Timings}
	return c.postJob(ctx, "/v1/analyze", body, req.Trace)
}

// batchBody is the POST /v1/batch payload.
type batchBody struct {
	Items          []BatchRequestItem `json:"items"`
	Options        *Options           `json:"options,omitempty"`
	Async          bool               `json:"async,omitempty"`
	IdempotencyKey string             `json:"idempotency_key,omitempty"`
	Timings        bool               `json:"timings,omitempty"`
}

// BatchRequestItem is one unit of a batch submission.
type BatchRequestItem struct {
	Key  string `json:"key,omitempty"`
	Apps []App  `json:"apps"`
}

// BatchRequest submits many analyses as one job.
type BatchRequest struct {
	Items          []BatchRequestItem
	Options        *Options
	Async          bool
	IdempotencyKey string
	Timings        bool
	Trace          string
}

// Batch submits a multi-item job with the same resilience stack as
// Analyze.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (*Job, error) {
	key := req.IdempotencyKey
	if key == "" {
		key = newIdemKey()
	}
	body := batchBody{Items: req.Items, Options: req.Options, Async: req.Async, IdempotencyKey: key, Timings: req.Timings}
	return c.postJob(ctx, "/v1/batch", body, req.Trace)
}

// ForwardRaw relays a pre-encoded analyze or batch body to this
// client's daemon with the forwarded-hop marker set, pinning the trace
// ID so the receiving node logs under the originating request's trace.
// Cluster routing uses it to hand a request to the key's owner without
// re-encoding (the body the origin validated is the body the owner
// sees).
func (c *Client) ForwardRaw(ctx context.Context, path string, body []byte, trace string) (*Job, error) {
	var j Job
	tc := &traceCapture{send: trace}
	if err := c.doPayload(ctx, http.MethodPost, path, body, &j, tc, true); err != nil {
		return nil, err
	}
	if j.Trace = tc.received; j.Trace == "" {
		j.Trace = trace
	}
	return &j, nil
}

// PutResult stores a record on this client's daemon under key. The
// cluster's peer-routed store backend uses it to write results through
// to the key's owning replica, so a cache hit survives whichever node
// the next request for that key lands on.
func (c *Client) PutResult(ctx context.Context, key string, rec *report.Record) error {
	return c.do(ctx, http.MethodPut, "/v1/results/"+key, rec, nil, nil)
}

// Poll fetches a job's current state by ID.
func (c *Client) Poll(ctx context.Context, jobID string) (*Job, error) {
	var j Job
	tc := &traceCapture{}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID, nil, &j, tc); err != nil {
		return nil, err
	}
	j.Trace = tc.received
	return &j, nil
}

// Wait polls a job until it reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, jobID string) (*Job, error) {
	for {
		j, err := c.Poll(ctx, jobID)
		if err != nil {
			return nil, err
		}
		if j.Terminal() {
			return j, nil
		}
		if err := c.cfg.sleep(ctx, c.cfg.PollInterval); err != nil {
			return nil, err
		}
	}
}

// Result fetches a stored record by its content address.
func (c *Client) Result(ctx context.Context, key string) (*report.Record, error) {
	var rec report.Record
	if err := c.do(ctx, http.MethodGet, "/v1/results/"+key, nil, &rec, nil); err != nil {
		return nil, err
	}
	return &rec, nil
}

// Healthy reports whether the daemon answers its liveness probe.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, nil)
}

// traceCapture threads the trace ID through one logical request: send
// goes out on every attempt's X-Soteria-Trace header (unchanged across
// retries, so the server logs one ID for the whole logical request);
// received is the server's adopted ID from the last response.
type traceCapture struct {
	send     string
	received string
}

// postJob submits a job payload and decodes the job response. A sync
// submission that completes returns the terminal job directly; an
// async one returns the accepted (202) state. The client mints the
// job's trace ID here, before the first attempt, unless the caller
// pinned one.
func (c *Client) postJob(ctx context.Context, path string, body any, trace string) (*Job, error) {
	var j Job
	if trace == "" {
		trace = obs.NewTraceID()
	}
	tc := &traceCapture{send: trace}
	if err := c.do(ctx, http.MethodPost, path, body, &j, tc); err != nil {
		return nil, err
	}
	if j.Trace = tc.received; j.Trace == "" {
		j.Trace = tc.send // older daemon without the header
	}
	return &j, nil
}

// retryAfter parses a Retry-After header as a backoff floor: both RFC
// 9110 forms are accepted — delay-seconds ("3") and HTTP-date ("Fri,
// 07 Aug 2026 12:00:05 GMT"), the latter taken relative to now.
// Negative delays and dates already past clamp to zero (retry
// immediately); absent or unparseable values are 0 too.
func retryAfter(resp *http.Response, now time.Time) time.Duration {
	if resp == nil {
		return 0
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	// http.ParseTime covers all three date layouts RFC 9110 admits
	// (IMF-fixdate, RFC 850, ANSI C asctime).
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
		return 0
	}
	return 0
}

// retryable classifies a response status: 429 and all 5xx retry,
// other 4xx are the caller's bug and fail immediately.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// breakerCounts reports whether a status should trip the breaker:
// only server-side trouble (5xx) counts — 429 is healthy backpressure.
func breakerCounts(status int) bool { return status >= 500 }

// do runs one logical request with the full resilience stack and
// decodes a 2xx body into out (when non-nil). tc (optional) sends and
// captures the trace header.
func (c *Client) do(ctx context.Context, method, path string, body, out any, tc *traceCapture) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	return c.doPayload(ctx, method, path, payload, out, tc, false)
}

// doPayload is do with a pre-encoded body and the forwarded-hop flag.
func (c *Client) doPayload(ctx context.Context, method, path string, payload []byte, out any, tc *traceCapture, forwarded bool) error {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt, lastErr); err != nil {
				return err
			}
		}
		if !c.br.allow(c.cfg.now()) {
			return fmt.Errorf("%w (cooling down after consecutive failures)", ErrCircuitOpen)
		}
		status, retriable, err := c.once(ctx, method, path, payload, out, tc, forwarded)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		c.brRecord(status)
		if !retriable {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("client: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// brRecord feeds one outcome to the breaker. status 0 means the
// request never got an HTTP response (network failure) — that counts.
func (c *Client) brRecord(status int) {
	c.br.record(status != 0 && !breakerCounts(status), c.cfg.now())
}

// once performs a single HTTP attempt. It returns the response status
// (0 for transport errors), whether the failure is retryable, and the
// error. retryErr carries the Retry-After floor to the backoff.
func (c *Client) once(ctx context.Context, method, path string, payload []byte, out any, tc *traceCapture, forwarded bool) (int, bool, error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return 0, false, fmt.Errorf("client: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tc != nil && tc.send != "" {
		req.Header.Set(TraceHeader, tc.send)
	}
	if forwarded {
		req.Header.Set(ForwardedHeader, "1")
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, true, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if tc != nil {
		if t := resp.Header.Get(TraceHeader); t != "" {
			tc.received = t
		}
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return resp.StatusCode, true, fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode >= 400 {
		msg := strings.TrimSpace(string(data))
		var decoded struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &decoded) == nil && decoded.Error != "" {
			msg = decoded.Error
		}
		apiErr := &APIError{Status: resp.StatusCode, Message: msg}
		if retryable(resp.StatusCode) {
			return resp.StatusCode, true, &retryErr{err: apiErr, after: retryAfter(resp, c.cfg.now())}
		}
		return resp.StatusCode, false, apiErr
	}
	c.brRecord(resp.StatusCode) // success closes the breaker
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, false, fmt.Errorf("client: decoding response: %w", err)
		}
	}
	return resp.StatusCode, false, nil
}

// retryErr wraps a retryable failure with its server-suggested floor.
type retryErr struct {
	err   error
	after time.Duration
}

func (e *retryErr) Error() string { return e.err.Error() }
func (e *retryErr) Unwrap() error { return e.err }

// backoff sleeps the exponential-with-full-jitter delay before attempt
// n (1-based), floored at the server's Retry-After hint. It refuses to
// sleep past the context's deadline: the last error surfaces now
// rather than after a doomed wait.
func (c *Client) backoff(ctx context.Context, attempt int, lastErr error) error {
	ceil := float64(c.cfg.BaseBackoff) * math.Pow(2, float64(attempt-1))
	if m := float64(c.cfg.MaxBackoff); ceil > m {
		ceil = m
	}
	d := time.Duration(ceil * c.cfg.jitter())
	var re *retryErr
	if errors.As(lastErr, &re) && re.after > d {
		d = re.after
	}
	if dl, ok := ctx.Deadline(); ok && c.cfg.now().Add(d).After(dl) {
		return fmt.Errorf("client: deadline too close for %s backoff: %w", d.Round(time.Millisecond), lastErr)
	}
	return c.cfg.sleep(ctx, d)
}
