package soteria

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/guard/faultinject"
	"github.com/soteria-analysis/soteria/internal/market"
	"github.com/soteria-analysis/soteria/internal/market/audit"
	"github.com/soteria-analysis/soteria/internal/paperapps"
)

// renderAudit flattens an audit report into one canonical string;
// byte-identical renderings mean identical verdicts in identical
// order.
func renderAudit(rep *audit.Report) string {
	var b strings.Builder
	row := func(e audit.Entry) {
		fmt.Fprintf(&b, "%s incomplete=%t err=%t violated=%s\n",
			e.ID, e.Incomplete, e.Err != nil, strings.Join(e.Violated, ","))
	}
	for _, e := range rep.Apps {
		row(e)
	}
	for _, e := range rep.Groups {
		row(e)
	}
	return b.String()
}

// TestParallelBatchMarketCorpus audits the full 65-app market corpus
// (plus the Table 4 groups) sequentially and with eight batch workers
// and requires byte-identical verdicts in identical order.
func TestParallelBatchMarketCorpus(t *testing.T) {
	ctx := context.Background()
	seq := audit.Run(ctx, 1, nil)
	par := audit.Run(ctx, 8, nil)

	if len(seq.Apps) != len(market.All()) {
		t.Fatalf("audited %d apps, corpus has %d", len(seq.Apps), len(market.All()))
	}
	for _, e := range seq.Apps {
		if e.Err != nil {
			t.Fatalf("%s: %v", e.ID, e.Err)
		}
	}
	if got, want := renderAudit(par), renderAudit(seq); got != want {
		t.Errorf("parallel audit diverges from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}

	// Sanity: the corpus ground truth still holds under parallelism.
	violated := map[string][]string{}
	for _, e := range par.Apps {
		if len(e.Violated) > 0 {
			violated[e.ID] = e.Violated
		}
	}
	for id, want := range market.Table3Expected {
		got := map[string]bool{}
		for _, v := range violated[id] {
			got[v] = true
		}
		for _, w := range want {
			if !got[w] {
				t.Errorf("%s: expected violation %s missing (got %v)", id, w, violated[id])
			}
		}
	}
}

// TestParallelBatchFaultIsolation injects a panic into one batch
// item's worker and verifies the failure is contained: the victim
// degrades, every other item's verdict is unchanged.
func TestParallelBatchFaultIsolation(t *testing.T) {
	ctx := context.Background()
	baseline := audit.Run(ctx, 4, nil)

	defer faultinject.Reset()
	faultinject.ArmPanic(faultinject.SiteBatchItem, "TP3")
	faulted := audit.Run(ctx, 4, nil)

	if len(faulted.Apps) != len(baseline.Apps) {
		t.Fatalf("faulted audit lost entries: %d vs %d", len(faulted.Apps), len(baseline.Apps))
	}
	for i, e := range faulted.Apps {
		want := baseline.Apps[i]
		if e.ID == "TP3" {
			if e.Err == nil && !e.Incomplete {
				t.Errorf("TP3 should degrade under an injected worker panic: %+v", e)
			}
			continue
		}
		if e.Err != nil {
			t.Errorf("%s: unexpected error: %v", e.ID, e.Err)
		}
		if strings.Join(e.Violated, ",") != strings.Join(want.Violated, ",") {
			t.Errorf("%s: verdicts changed under sibling fault: %v vs %v", e.ID, e.Violated, want.Violated)
		}
	}
	for i, e := range faulted.Groups {
		want := baseline.Groups[i]
		if strings.Join(e.Violated, ",") != strings.Join(want.Violated, ",") {
			t.Errorf("group %s: verdicts changed under sibling fault: %v vs %v", e.ID, e.Violated, want.Violated)
		}
	}
}

// TestParallelReportDeterminism renders violation reports from
// repeated parallel runs of the same buggy environment and requires
// them byte-identical — catalogue order, independent of scheduling.
func TestParallelReportDeterminism(t *testing.T) {
	apps := []*App{
		parse(t, "buggy-smoke-alarm", paperapps.BuggySmokeAlarm),
		parse(t, "water-leak-detector", paperapps.WaterLeakDetector),
	}
	renderResult := func(res *Result) string {
		var b strings.Builder
		for _, v := range res.Violations {
			fmt.Fprintf(&b, "%s|%s|%s|%s\n", v.ID, v.Kind, v.Detail, v.Counterexample)
		}
		fmt.Fprintf(&b, "checked=%s\n", strings.Join(res.Checked, ","))
		return b.String()
	}

	seq, err := AnalyzeEnvironment(apps)
	if err != nil {
		t.Fatal(err)
	}
	want := renderResult(seq)
	if want == "" {
		t.Fatal("buggy environment should produce violations")
	}
	for run := 0; run < 3; run++ {
		res, err := AnalyzeEnvironment(apps, WithParallel(8))
		if err != nil {
			t.Fatal(err)
		}
		if got := renderResult(res); got != want {
			t.Errorf("run %d: parallel report differs from sequential:\n--- want ---\n%s--- got ---\n%s", run, want, got)
		}
	}
}

// TestParallelBatchPublicAPI drives the exported batch surface:
// per-item environments, input-order results, option plumbing.
func TestParallelBatchPublicAPI(t *testing.T) {
	items := []BatchItem{
		{Key: "buggy", Apps: []*App{parse(t, "buggy", paperapps.BuggySmokeAlarm)}},
		{Key: "pair", Apps: []*App{
			parse(t, "smoke-alarm", paperapps.SmokeAlarm),
			parse(t, "water-leak", paperapps.WaterLeakDetector),
		}},
	}
	results := AnalyzeBatch(context.Background(), 2, items, WithParallel(2))
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Key != "buggy" || results[1].Key != "pair" {
		t.Errorf("results out of order: %s, %s", results[0].Key, results[1].Key)
	}
	if results[0].Err != nil || len(results[0].Result.Violations) == 0 {
		t.Errorf("buggy item should report violations: %+v", results[0])
	}
	if results[1].Err != nil || results[1].Result == nil {
		t.Fatalf("pair item failed: %+v", results[1])
	}
	if got := results[1].Result.Apps; len(got) != 2 {
		t.Errorf("pair result apps = %v", got)
	}
}
