package soteria

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/soteria-analysis/soteria/internal/guard/faultinject"
	"github.com/soteria-analysis/soteria/internal/market"
	"github.com/soteria-analysis/soteria/internal/paperapps"
)

// buggyEnv builds the two-app environment the resilience tests fault:
// it has both general and app-specific violations and several
// applicable catalogue properties.
func buggyEnv(t *testing.T) []*App {
	t.Helper()
	return []*App{
		parse(t, "buggy-smoke-alarm", paperapps.BuggySmokeAlarm),
		parse(t, "water-leak-detector", paperapps.WaterLeakDetector),
	}
}

// exerciseResult drives the whole post-hoc API surface; every call
// may fail with an error but must not panic.
func exerciseResult(res *Result) {
	_, _, _ = res.CheckFormula(`AG "valve.valve=closed"`)
	_, _, _ = res.CheckFormulaEngine(`AG "valve.valve=closed"`, BDD)
	_, _, _ = res.CheckFormulaEngine(`AG "valve.valve=closed"`, BMC)
	_, _, _ = res.CheckLTL(`G "valve.valve=closed"`)
	_, _, _ = res.WitnessFormula(`EF "valve.valve=closed"`)
	_ = res.DOT()
	_ = res.SMV()
}

// TestFaultInjectionSweep arms a panic at every canonical injection
// site in turn and asserts the public API never panics and always
// returns a structured result: analysis-phase faults degrade to a
// partial Result with diagnostics, post-hoc faults come back as
// errors.
func TestFaultInjectionSweep(t *testing.T) {
	for _, site := range faultinject.Sites() {
		t.Run(site, func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			faultinject.ArmPanic(site, "")
			res, err := AnalyzeEnvironment(buggyEnv(t))
			if err != nil {
				t.Fatalf("fault at %s escalated to a hard error: %v", site, err)
			}
			if res == nil {
				t.Fatalf("fault at %s: nil result", site)
			}
			if res.Incomplete && len(res.Diagnostics) == 0 {
				t.Errorf("fault at %s: incomplete result without diagnostics", site)
			}
			for _, d := range res.Diagnostics {
				if d.Kind != DiagnosticPanic && d.Kind != DiagnosticBudget && d.Kind != DiagnosticError {
					t.Errorf("fault at %s: unclassified diagnostic %v", site, d)
				}
			}
			exerciseResult(res)
		})
	}
}

// TestFaultInjectionBudgetSweep repeats the sweep with injected
// budget exhaustion instead of panics.
func TestFaultInjectionBudgetSweep(t *testing.T) {
	for _, site := range faultinject.Sites() {
		t.Run(site, func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			faultinject.ArmBudget(site, "", "states")
			res, err := AnalyzeEnvironment(buggyEnv(t))
			if err != nil {
				t.Fatalf("fault at %s escalated to a hard error: %v", site, err)
			}
			exerciseResult(res)
		})
	}
}

// TestAnalyzeStageFaultYieldsPartialResult pins the degradation
// contract for faults before property checking: the run stays
// err-free, is marked incomplete, and carries a panic diagnostic
// naming the stage.
func TestAnalyzeStageFaultYieldsPartialResult(t *testing.T) {
	for _, site := range []string{faultinject.SiteAnalyze, faultinject.SiteStateModel, faultinject.SiteKripke} {
		t.Run(site, func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			faultinject.ArmPanic(site, "")
			res, err := AnalyzeEnvironment(buggyEnv(t))
			if err != nil {
				t.Fatalf("hard error: %v", err)
			}
			if !res.Incomplete {
				t.Fatal("result should be incomplete")
			}
			found := false
			for _, d := range res.Diagnostics {
				if d.Kind == DiagnosticPanic {
					found = true
				}
			}
			if !found {
				t.Errorf("no panic diagnostic; got %v", res.Diagnostics)
			}
		})
	}
}

// TestPerPropertyFaultIsolation faults the check of one catalogue
// property and asserts the remaining properties still report their
// verdicts: the faulted ID leaves Checked, a diagnostic names it, and
// the other properties' verdicts (including the P.10 violation) are
// unaffected.
func TestPerPropertyFaultIsolation(t *testing.T) {
	clean, err := AnalyzeEnvironment(buggyEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Checked) < 2 {
		t.Fatalf("need >=2 checked properties to isolate one; got %v", clean.Checked)
	}
	if !clean.Violated("P.10") {
		t.Fatalf("baseline should violate P.10; violations = %v", clean.Violations)
	}
	victim := ""
	for _, id := range clean.Checked {
		if id != "P.10" {
			victim = id
			break
		}
	}

	t.Cleanup(faultinject.Reset)
	faultinject.ArmPanic(faultinject.SiteProperty, victim)
	res, err := AnalyzeEnvironment(buggyEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete {
		t.Error("result should be incomplete with one property faulted")
	}
	foundDiag := false
	for _, d := range res.Diagnostics {
		if d.Property == victim {
			foundDiag = true
		}
	}
	if !foundDiag {
		t.Errorf("no diagnostic for faulted property %s; got %v", victim, res.Diagnostics)
	}
	for _, id := range res.Checked {
		if id == victim {
			t.Errorf("faulted property %s still listed as checked", victim)
		}
	}
	if len(res.Checked) != len(clean.Checked)-1 {
		t.Errorf("checked = %v, want all of %v except %s", res.Checked, clean.Checked, victim)
	}
	if !res.Violated("P.10") {
		t.Error("P.10 verdict lost when an unrelated property faulted")
	}
}

// TestEngineFallback exhausts the explicit engine's budget for every
// property and asserts the BDD engine steps in: all properties stay
// decided (the run is complete), the P.10 violation survives, and
// diagnostics record the explicit-engine failures.
func TestEngineFallback(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.ArmBudget(faultinject.SiteEngineExplicit, "", "states")
	res, err := AnalyzeEnvironment(buggyEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete {
		t.Errorf("fallback engines should keep the run complete; diagnostics = %v", res.Diagnostics)
	}
	if len(res.Checked) == 0 {
		t.Error("no properties decided")
	}
	if !res.Violated("P.10") {
		t.Errorf("P.10 verdict lost under engine fallback; violations = %v", res.Violations)
	}
	fell := false
	for _, d := range res.Diagnostics {
		if d.Engine == string(Explicit) && d.Kind == DiagnosticBudget {
			fell = true
		}
	}
	if !fell {
		t.Errorf("no explicit-engine budget diagnostic recorded; got %v", res.Diagnostics)
	}
}

// TestEngineFallbackSecondTier faults the explicit and BDD engines;
// the catalogue's AG-shaped formulas are still decided by BMC, the
// last engine in the chain.
func TestEngineFallbackSecondTier(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.ArmBudget(faultinject.SiteEngineExplicit, "", "states")
	faultinject.ArmPanic(faultinject.SiteEngineBDD, "")
	res, err := AnalyzeEnvironment(buggyEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checked) == 0 {
		t.Error("BMC should still decide the AG-shaped catalogue formulas")
	}
	if len(res.Diagnostics) == 0 {
		t.Error("no diagnostics recorded for the two failed engines")
	}
}

// TestEngineFallbackExhausted faults every CTL engine; all properties
// become undecided — but the run still returns structured.
func TestEngineFallbackExhausted(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.ArmBudget(faultinject.SiteEngineExplicit, "", "states")
	faultinject.ArmPanic(faultinject.SiteEngineBDD, "")
	faultinject.ArmPanic(faultinject.SiteEngineBMC, "")
	res, err := AnalyzeEnvironment(buggyEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete {
		t.Error("with every engine failing, the properties must be undecided")
	}
	if len(res.Checked) != 0 {
		t.Errorf("no property should be decided; got %v", res.Checked)
	}
	if len(res.Diagnostics) == 0 {
		t.Error("no diagnostics recorded")
	}
}

// marketGroupEnv assembles the largest Table 4 multi-app group — the
// heaviest environment in the repo — for the timeout tests.
func marketGroupEnv(t *testing.T) []*App {
	t.Helper()
	var apps []*App
	for _, g := range market.Groups() {
		for _, id := range g.Members {
			spec, ok := market.ByID(id)
			if !ok {
				t.Fatalf("unknown market app %s", id)
			}
			apps = append(apps, parse(t, spec.Name, spec.Source))
		}
	}
	return apps
}

// TestTimeoutReturnsPromptly runs the heaviest environment under a
// 1ms wall-clock budget: the analysis must return well under a
// second, incomplete, with a budget diagnostic.
func TestTimeoutReturnsPromptly(t *testing.T) {
	apps := marketGroupEnv(t)
	start := time.Now()
	res, err := AnalyzeEnvironment(apps, WithTimeout(time.Millisecond))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed >= time.Second {
		t.Errorf("1ms-budget analysis took %v, want < 1s", elapsed)
	}
	if !res.Incomplete {
		t.Fatalf("1ms-budget analysis reported complete in %v", elapsed)
	}
	budget := false
	for _, d := range res.Diagnostics {
		if d.Kind == DiagnosticBudget {
			budget = true
		}
	}
	if !budget {
		t.Errorf("no budget diagnostic; got %v", res.Diagnostics)
	}
}

// TestContextCancellation aborts an analysis through an
// already-canceled context.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AnalyzeEnvironmentContext(ctx, buggyEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete {
		t.Error("canceled analysis should be incomplete")
	}
	budget := false
	for _, d := range res.Diagnostics {
		if d.Kind == DiagnosticBudget {
			budget = true
		}
	}
	if !budget {
		t.Errorf("cancellation should yield a budget diagnostic; got %v", res.Diagnostics)
	}
}

// TestMaxStatesLimit caps state enumeration below the smoke alarm's
// 96 states; the whole product is charged before enumeration, so the
// budget trips immediately.
func TestMaxStatesLimit(t *testing.T) {
	app := parse(t, "smoke-alarm", paperapps.SmokeAlarm)
	res, err := Analyze(app, WithLimits(Limits{MaxStates: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete {
		t.Fatal("analysis under MaxStates=4 should be incomplete")
	}
	found := false
	for _, d := range res.Diagnostics {
		if d.Kind == DiagnosticBudget && strings.Contains(d.Message, "states") {
			found = true
		}
	}
	if !found {
		t.Errorf("no states-budget diagnostic; got %v", res.Diagnostics)
	}
}

// TestMalformedFormulasReturnErrors drives the formula entry points
// with malformed and adversarially nested inputs; all must return
// errors, none may panic or exhaust the stack.
func TestMalformedFormulasReturnErrors(t *testing.T) {
	app := parse(t, "smoke-alarm", paperapps.SmokeAlarm)
	res, err := Analyze(app)
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"AG(",
		"E[\"a\" U",
		"\"unterminated",
		strings.Repeat("!", 100000) + "\"p\"",
		strings.Repeat("(", 100000) + "\"p\"" + strings.Repeat(")", 100000),
		strings.Repeat("AG ", 50000) + "\"p\"",
	}
	for _, f := range bad {
		if _, _, err := res.CheckFormula(f); err == nil {
			t.Errorf("CheckFormula(%.20q...) should fail", f)
		}
		if _, _, err := res.CheckLTL(strings.ReplaceAll(f, "AG", "G")); err == nil {
			t.Errorf("CheckLTL(%.20q...) should fail", f)
		}
		if _, _, err := res.WitnessFormula(f); err == nil {
			t.Errorf("WitnessFormula(%.20q...) should fail", f)
		}
	}
	// A small depth limit rejects even modest nesting.
	res, err = Analyze(app, WithLimits(Limits{MaxFormulaDepth: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.CheckFormula(`!!!!!"p"`); err == nil {
		t.Error("MaxFormulaDepth=3 should reject 5 levels of negation")
	}
	if _, _, err := res.CheckFormula(`AG "p"`); err != nil {
		t.Errorf("shallow formula rejected under MaxFormulaDepth=3: %v", err)
	}
}
