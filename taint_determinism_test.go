package soteria

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/soteria-analysis/soteria/internal/maliot"
)

// TestTaintVerdictsCrossRuntime pins the acceptance contract for the
// taint family: analyzing the same leaky app sequentially, with
// parallel property workers, and through the service (`-remote` path)
// must produce byte-identical records — including the taint_flows
// section and its rendered witnesses. MalIoT App11 is the fixture: the
// suite's sensitive-data-leak app, expected to violate exactly T.2.
func TestTaintVerdictsCrossRuntime(t *testing.T) {
	var app11 maliot.App
	for _, a := range maliot.Suite() {
		if a.ID == "App11" {
			app11 = a
		}
	}
	if app11.Source == "" {
		t.Fatal("App11 missing from the MalIoT suite")
	}

	app, err := ParseApp(app11.Name, app11.Source)
	if err != nil {
		t.Fatalf("ParseApp: %v", err)
	}

	record := func(label string, opts ...Option) string {
		t.Helper()
		res, err := Analyze(app, opts...)
		if err != nil {
			t.Fatalf("%s: Analyze: %v", label, err)
		}
		data, err := res.JSON()
		if err != nil {
			t.Fatalf("%s: JSON: %v", label, err)
		}
		return string(data)
	}

	seq := record("sequential")
	if !strings.Contains(seq, `"taint_flows":[{`) {
		t.Fatalf("sequential record lacks taint flows:\n%s", seq)
	}
	if !strings.Contains(seq, `"id":"T.2"`) {
		t.Fatalf("App11 record does not flag T.2:\n%s", seq)
	}
	for _, workers := range []int{2, 8} {
		if par := record("parallel", WithParallel(workers)); par != seq {
			t.Errorf("parallel=%d record diverges from sequential:\n%s\n---\n%s", workers, par, seq)
		}
	}

	// The remote path: the same source through /v1/analyze, comparing
	// the stored record field-normalized against the in-process one
	// (the service wraps the record, so compare re-marshaled maps).
	svc, err := NewService(ServiceConfig{StoreDir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	body, _ := json.Marshal(map[string]string{
		"name": app11.Name, "source": app11.Source,
	})
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: status %d", resp.StatusCode)
	}
	var jr struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	norm := func(raw []byte) string {
		var v map[string]any
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		b, _ := json.Marshal(v)
		return string(b)
	}
	if norm(jr.Result) != norm([]byte(seq)) {
		t.Errorf("remote record diverges from sequential:\n%s\n---\n%s",
			norm(jr.Result), norm([]byte(seq)))
	}
}
