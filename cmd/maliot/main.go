// Command maliot runs the MalIoT test corpus (paper §6.2, Appendix C):
// 17 hand-crafted flawed SmartThings apps with ground-truth property
// violations. It prints the per-app results table and the headline
// precision figures.
//
// Usage:
//
//	maliot [-src AppN]
//
// With -src the named app's Groovy source (including its ground-truth
// comment block) is printed instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/soteria-analysis/soteria/internal/experiments"
	"github.com/soteria-analysis/soteria/internal/maliot"
)

func main() {
	src := flag.String("src", "", "print the source of the given app (App1..App17) and exit")
	flag.Parse()

	if *src != "" {
		app, ok := maliot.AppByID(*src)
		if !ok {
			fmt.Fprintf(os.Stderr, "maliot: unknown app %q\n", *src)
			os.Exit(2)
		}
		fmt.Printf("// %s — %s\n%s", app.ID, app.Description, app.Source)
		return
	}

	table, res, err := experiments.MalIoTTable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "maliot: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(table.String())
	fmt.Printf("identified %d/%d ground-truth violations, %d false positive(s)\n",
		res.Identified, res.GroundTruth, res.FalsePositives)
	for _, r := range res.Apps {
		if !r.Correct {
			os.Exit(1)
		}
	}
}
