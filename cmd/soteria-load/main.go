// Command soteria-load replays the market corpus against a soteriad
// node or fleet and reports the numbers an operator sizes a deployment
// with: exact p50/p90/p99 latency, sustained throughput, cache-hit
// rate, and per-node queue depth.
//
// Usage:
//
//	soteria-load -targets URL[,URL...] [flags]
//	soteria-load -merge LABEL=FILE[,LABEL=FILE...] -out BENCH_cluster.json
//
// Flags:
//
//	-targets LIST   comma-separated node base URLs (round-robin)
//	-label S        fleet label recorded in the output (default "fleet")
//	-levels LIST    closed-loop concurrency sweep (default 1,4,16)
//	-requests N     requests per closed-loop level (default 195 = 3x corpus)
//	-open-rate R    also run an open-loop phase at R req/s (0 disables)
//	-open-duration D  open-loop phase length (default 10s)
//	-synthetic N    add N cache-busting synthetic variants to the corpus
//	-timeout D      per-request timeout (default 60s)
//	-seed N         deterministic corpus shuffle (0 = corpus order)
//	-out PATH       write the JSON report here (default stdout)
//	-merge LIST     merge prior run files into one report instead of running
//
// Closed-loop levels measure sustainable capacity at fixed concurrency;
// the optional open-loop phase fires arrivals on a fixed schedule so
// queueing delay shows up in the percentiles instead of slowing the
// arrival rate (coordinated omission). -merge combines runs recorded
// against different fleet sizes (for example 1-node and 3-node) into
// the single BENCH_cluster.json artifact the repo commits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/soteria-analysis/soteria/internal/loadgen"
	"github.com/soteria-analysis/soteria/internal/market"
)

// fleetReport is one fleet's measurements across all load levels.
type fleetReport struct {
	Label         string            `json:"label"`
	Nodes         int               `json:"nodes"`
	Targets       []string          `json:"targets"`
	CorpusApps    int               `json:"corpus_apps"`
	SyntheticApps int               `json:"synthetic_apps,omitempty"`
	Points        []*loadgen.Result `json:"points"`
}

// benchReport is the BENCH_cluster.json schema.
type benchReport struct {
	Schema   int            `json:"schema"`
	HostCPUs int            `json:"host_cpus"`
	Fleets   []*fleetReport `json:"fleets"`
}

func main() {
	var (
		targets      = flag.String("targets", "", "comma-separated node base URLs (round-robin)")
		label        = flag.String("label", "fleet", "fleet label recorded in the output")
		levels       = flag.String("levels", "1,4,16", "closed-loop concurrency sweep")
		requests     = flag.Int("requests", 3*len(market.All()), "requests per closed-loop level")
		openRate     = flag.Float64("open-rate", 0, "open-loop arrival rate in req/s (0 disables)")
		openDuration = flag.Duration("open-duration", 10*time.Second, "open-loop phase length")
		synthetic    = flag.Int("synthetic", 0, "cache-busting synthetic corpus variants to add")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		seed         = flag.Int64("seed", 0, "deterministic corpus shuffle (0 = corpus order)")
		out          = flag.String("out", "", "write the JSON report here (default stdout)")
		merge        = flag.String("merge", "", "merge LABEL=FILE[,LABEL=FILE...] prior runs instead of running load")
	)
	flag.Parse()

	if *merge != "" {
		if err := runMerge(*merge, *out); err != nil {
			fmt.Fprintln(os.Stderr, "soteria-load:", err)
			os.Exit(1)
		}
		return
	}
	if *targets == "" {
		fmt.Fprintln(os.Stderr, "soteria-load: -targets is required (or -merge)")
		os.Exit(2)
	}
	urls := splitList(*targets)
	lvls, err := parseLevels(*levels)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soteria-load:", err)
		os.Exit(2)
	}

	items := loadgen.MarketItems()
	corpus := len(items)
	if *synthetic > 0 {
		items = append(items, loadgen.SyntheticItems(*synthetic)...)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fr := &fleetReport{
		Label:         *label,
		Nodes:         len(urls),
		Targets:       urls,
		CorpusApps:    corpus,
		SyntheticApps: *synthetic,
	}
	for _, c := range lvls {
		fmt.Fprintf(os.Stderr, "soteria-load: closed loop, concurrency=%d, requests=%d\n", c, *requests)
		res, err := loadgen.Run(ctx, loadgen.Config{
			Targets:     urls,
			Items:       items,
			Concurrency: c,
			Requests:    *requests,
			Timeout:     *timeout,
			Seed:        *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "soteria-load:", err)
			os.Exit(1)
		}
		report(res)
		fr.Points = append(fr.Points, res)
	}
	if *openRate > 0 {
		fmt.Fprintf(os.Stderr, "soteria-load: open loop, rate=%.1f req/s for %s\n", *openRate, *openDuration)
		res, err := loadgen.Run(ctx, loadgen.Config{
			Targets:  urls,
			Items:    items,
			Rate:     *openRate,
			Duration: *openDuration,
			Timeout:  *timeout,
			Seed:     *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "soteria-load:", err)
			os.Exit(1)
		}
		report(res)
		fr.Points = append(fr.Points, res)
	}

	if err := writeJSON(*out, fr); err != nil {
		fmt.Fprintln(os.Stderr, "soteria-load:", err)
		os.Exit(1)
	}
}

// report prints one run's headline numbers to stderr.
func report(r *loadgen.Result) {
	fmt.Fprintf(os.Stderr,
		"  %s: %d req, %d err (%d rejected), p50 %.1fms p99 %.1fms, %.1f req/s, cache hit %.0f%%\n",
		r.Mode, r.Requests, r.Errors, r.Rejected, r.P50MS, r.P99MS, r.ThroughputRPS, 100*r.CacheHit)
}

// runMerge combines prior per-fleet run files into one benchReport.
// spec is LABEL=FILE[,LABEL=FILE...]; LABEL overrides the file's label
// when present ("FILE" alone keeps the recorded label).
func runMerge(spec, out string) error {
	rep := &benchReport{Schema: 1, HostCPUs: hostCPUs()}
	for _, part := range splitList(spec) {
		label, file := "", part
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			label, file = part[:eq], part[eq+1:]
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		var fr fleetReport
		if err := json.Unmarshal(data, &fr); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		if label != "" {
			fr.Label = label
		}
		if len(fr.Points) == 0 {
			return fmt.Errorf("%s: no load points recorded", file)
		}
		rep.Fleets = append(rep.Fleets, &fr)
	}
	if len(rep.Fleets) == 0 {
		return fmt.Errorf("-merge: no input files")
	}
	return writeJSON(out, rep)
}

func hostCPUs() int { return runtime.NumCPU() }

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -levels entry %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-levels is empty")
	}
	return out, nil
}
