// Command soteria-bench regenerates every table and figure of the
// paper's evaluation (§6) from the reproduction's corpora.
//
// Usage:
//
//	soteria-bench                 # everything
//	soteria-bench -table 2|3|4|maliot
//	soteria-bench -fig 11a|11b|union|verify
//	soteria-bench -ablation predicates|merging
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/soteria-analysis/soteria/internal/experiments"
)

func main() {
	table := flag.String("table", "", "regenerate one table: 2, 3, 4, or maliot")
	fig := flag.String("fig", "", "regenerate one figure: 11a, 11b, union, or verify")
	ablation := flag.String("ablation", "", "run one ablation: predicates or merging")
	flag.Parse()

	all := *table == "" && *fig == "" && *ablation == ""
	ran := false

	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "soteria-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
		ran = true
	}

	if all || *table == "2" {
		run("table 2", func() error {
			t, err := experiments.Table2()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *table == "3" {
		run("table 3", func() error {
			t, err := experiments.Table3()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *table == "4" {
		run("table 4", func() error {
			t, err := experiments.Table4()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *table == "maliot" {
		run("maliot", func() error {
			t, _, err := experiments.MalIoTTable()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *fig == "11a" {
		run("fig 11a", func() error {
			t, err := experiments.Fig11a()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *fig == "11b" {
		run("fig 11b", func() error {
			s, err := experiments.Fig11b()
			if err != nil {
				return err
			}
			fmt.Print(s.String())
			return nil
		})
	}
	if all || *fig == "union" {
		run("union", func() error {
			t, err := experiments.UnionTiming()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *fig == "verify" {
		run("verify", func() error {
			t, err := experiments.VerificationTiming()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *ablation == "predicates" {
		run("ablation predicates", func() error {
			t, err := experiments.AblationPredicateLabels()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *ablation == "merging" {
		run("ablation merging", func() error {
			t, err := experiments.AblationPathMerging()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}

	if !ran {
		fmt.Fprintln(os.Stderr, "soteria-bench: nothing selected")
		flag.PrintDefaults()
		os.Exit(2)
	}
}
