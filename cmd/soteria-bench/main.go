// Command soteria-bench regenerates every table and figure of the
// paper's evaluation (§6) from the reproduction's corpora.
//
// Usage:
//
//	soteria-bench                 # everything
//	soteria-bench -table 2|3|4|maliot
//	soteria-bench -fig 11a|11b|union|verify
//	soteria-bench -ablation predicates|merging
//	soteria-bench -parallel N     # fan experiment analyses out over N workers
//	soteria-bench -parallel-bench # time sequential vs parallel corpus audit
//	                              # at each GOMAXPROCS in -parallel-bench-procs
//	                              # (default 1,4,8), write BENCH_parallel.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/soteria-analysis/soteria/internal/experiments"
	"github.com/soteria-analysis/soteria/internal/market/audit"
)

func main() {
	table := flag.String("table", "", "regenerate one table: 2, 3, 4, or maliot")
	fig := flag.String("fig", "", "regenerate one figure: 11a, 11b, union, or verify")
	ablation := flag.String("ablation", "", "run one ablation: predicates or merging")
	parallel := flag.Int("parallel", 1, "fan batch analyses out over this many workers (outputs are identical at any setting)")
	parallelBench := flag.Bool("parallel-bench", false, "benchmark a sequential vs parallel market audit and write BENCH_parallel.json")
	benchOut := flag.String("parallel-bench-out", "BENCH_parallel.json", "output path for -parallel-bench")
	benchProcs := flag.String("parallel-bench-procs", "1,4,8", "comma-separated GOMAXPROCS settings to sweep in -parallel-bench")
	flag.Parse()

	experiments.Parallel = *parallel

	if *parallelBench {
		if err := runParallelBench(*benchProcs, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "soteria-bench: parallel-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	all := *table == "" && *fig == "" && *ablation == ""
	ran := false

	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "soteria-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
		ran = true
	}

	if all || *table == "2" {
		run("table 2", func() error {
			t, err := experiments.Table2()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *table == "3" {
		run("table 3", func() error {
			t, err := experiments.Table3()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *table == "4" {
		run("table 4", func() error {
			t, err := experiments.Table4()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *table == "maliot" {
		run("maliot", func() error {
			t, _, err := experiments.MalIoTTable()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *fig == "11a" {
		run("fig 11a", func() error {
			t, err := experiments.Fig11a()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *fig == "11b" {
		run("fig 11b", func() error {
			s, err := experiments.Fig11b()
			if err != nil {
				return err
			}
			fmt.Print(s.String())
			return nil
		})
	}
	if all || *fig == "union" {
		run("union", func() error {
			t, err := experiments.UnionTiming()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *fig == "verify" {
		run("verify", func() error {
			t, err := experiments.VerificationTiming()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *ablation == "predicates" {
		run("ablation predicates", func() error {
			t, err := experiments.AblationPredicateLabels()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *ablation == "merging" {
		run("ablation merging", func() error {
			t, err := experiments.AblationPathMerging()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}

	if !ran {
		fmt.Fprintln(os.Stderr, "soteria-bench: nothing selected")
		flag.PrintDefaults()
		os.Exit(2)
	}
}

// parallelBenchPoint is one setting in the -parallel-bench sweep:
// sequential vs parallel wall time for a cold full-corpus audit (65
// individual apps + the Table 4 groups) at a fixed GOMAXPROCS, and
// whether the two runs produced identical verdicts.
type parallelBenchPoint struct {
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Parallel          int     `json:"parallel"`
	SequentialMS      float64 `json:"sequential_ms"`
	ParallelMS        float64 `json:"parallel_ms"`
	Speedup           float64 `json:"speedup"`
	VerdictsIdentical bool    `json:"verdicts_identical"`
}

// parallelBenchResult is the machine-readable trajectory
// -parallel-bench emits: one point per GOMAXPROCS setting, so the
// scaling curve (and its ceiling on a small host) is visible in a
// single artifact. HostCPUs records the physical budget: points with
// gomaxprocs above it can only show oversubscription, never speedup.
type parallelBenchResult struct {
	CorpusApps int                  `json:"corpus_apps"`
	Groups     int                  `json:"groups"`
	HostCPUs   int                  `json:"host_cpus"`
	Points     []parallelBenchPoint `json:"points"`
}

// runParallelBench sweeps the GOMAXPROCS settings in procs, timing two
// cold audits of the whole market corpus at each — workers=1, then
// workers=gomaxprocs (4 when the setting is 1, so the 1-proc point
// honestly shows fan-out without cores buys ~1x). Each audit gets a
// fresh (nil) cache so no run borrows another's work.
func runParallelBench(procs, out string) error {
	ctx := context.Background()
	restore := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(restore)

	res := parallelBenchResult{HostCPUs: runtime.NumCPU()}
	for _, field := range strings.Split(procs, ",") {
		maxprocs, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || maxprocs < 1 {
			return fmt.Errorf("bad -parallel-bench-procs entry %q", field)
		}
		runtime.GOMAXPROCS(maxprocs)
		parallel := maxprocs
		if parallel < 2 {
			parallel = 4
		}

		t0 := time.Now()
		seq := audit.Run(ctx, 1, nil)
		seqDur := time.Since(t0)

		t1 := time.Now()
		par := audit.Run(ctx, parallel, nil)
		parDur := time.Since(t1)

		res.CorpusApps = len(seq.Apps)
		res.Groups = len(seq.Groups)
		pt := parallelBenchPoint{
			GOMAXPROCS:        maxprocs,
			Parallel:          parallel,
			SequentialMS:      float64(seqDur.Microseconds()) / 1000,
			ParallelMS:        float64(parDur.Microseconds()) / 1000,
			Speedup:           seqDur.Seconds() / parDur.Seconds(),
			VerdictsIdentical: identicalVerdicts(seq, par),
		}
		res.Points = append(res.Points, pt)
		fmt.Printf("parallel bench @GOMAXPROCS=%d: sequential %.1fms, parallel(%d) %.1fms, speedup %.2fx, verdicts identical: %t\n",
			pt.GOMAXPROCS, pt.SequentialMS, pt.Parallel, pt.ParallelMS, pt.Speedup, pt.VerdictsIdentical)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	fmt.Printf("parallel bench trajectory (%d points) → %s\n", len(res.Points), out)
	return nil
}

func identicalVerdicts(a, b *audit.Report) bool {
	same := func(x, y []audit.Entry) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i].ID != y[i].ID || x[i].Incomplete != y[i].Incomplete ||
				len(x[i].Violated) != len(y[i].Violated) {
				return false
			}
			for j := range x[i].Violated {
				if x[i].Violated[j] != y[i].Violated[j] {
					return false
				}
			}
		}
		return true
	}
	return same(a.Apps, b.Apps) && same(a.Groups, b.Groups)
}
