// Command soteria-bench regenerates every table and figure of the
// paper's evaluation (§6) from the reproduction's corpora.
//
// Usage:
//
//	soteria-bench                 # everything
//	soteria-bench -table 2|3|4|maliot
//	soteria-bench -fig 11a|11b|union|verify
//	soteria-bench -ablation predicates|merging
//	soteria-bench -parallel N     # fan experiment analyses out over N workers
//	soteria-bench -parallel-bench # time sequential vs parallel corpus audit
//	                              # at each GOMAXPROCS in -parallel-bench-procs
//	                              # (default 1,4,8), write BENCH_parallel.json
//	soteria-bench -bdd-bench      # sweep synthetic models (default 10^3..10^6
//	                              # states) through explicit vs BDD engines,
//	                              # old vs new kernel, write BENCH_bdd.json
//	soteria-bench -obs-bench      # measure span-tracing overhead (off vs on)
//	                              # on a full analysis, write BENCH_obs.json,
//	                              # fail if the median overhead exceeds 3%
//	soteria-bench -cpuprofile F   # write a CPU profile of the run to F
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/soteria-analysis/soteria/internal/bdd"
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/experiments"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/market/audit"
	"github.com/soteria-analysis/soteria/internal/modelcheck"
	"github.com/soteria-analysis/soteria/internal/statemodel"
	"github.com/soteria-analysis/soteria/internal/symbolic"
)

func main() {
	table := flag.String("table", "", "regenerate one table: 2, 3, 4, or maliot")
	fig := flag.String("fig", "", "regenerate one figure: 11a, 11b, union, or verify")
	ablation := flag.String("ablation", "", "run one ablation: predicates or merging")
	parallel := flag.Int("parallel", 1, "fan batch analyses out over this many workers (outputs are identical at any setting)")
	parallelBench := flag.Bool("parallel-bench", false, "benchmark a sequential vs parallel market audit and write BENCH_parallel.json")
	benchOut := flag.String("parallel-bench-out", "BENCH_parallel.json", "output path for -parallel-bench")
	benchProcs := flag.String("parallel-bench-procs", "1,4,8", "comma-separated GOMAXPROCS settings to sweep in -parallel-bench")
	bddBench := flag.Bool("bdd-bench", false, "benchmark explicit vs BDD engines (old vs new kernel) on synthetic models and write BENCH_bdd.json")
	bddBenchOut := flag.String("bdd-bench-out", "BENCH_bdd.json", "output path for -bdd-bench")
	bddBenchSizes := flag.String("bdd-bench-sizes", "1000,10000,100000,1000000", "comma-separated approximate state counts to sweep in -bdd-bench")
	obsBench := flag.Bool("obs-bench", false, "measure span-tracing overhead on a full analysis and write BENCH_obs.json")
	obsBenchOut := flag.String("obs-bench-out", "BENCH_obs.json", "output path for -obs-bench")
	obsBenchPairs := flag.Int("obs-bench-pairs", 40, "off/on measurement pairs for -obs-bench")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()

	experiments.Parallel = *parallel

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soteria-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "soteria-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		// Stopped explicitly on the success paths below; error paths
		// os.Exit with a truncated profile, which pprof tolerates.
		defer pprof.StopCPUProfile()
	}

	if *obsBench {
		if err := runObsBench(*obsBenchPairs, *obsBenchOut); err != nil {
			fmt.Fprintf(os.Stderr, "soteria-bench: obs-bench: %v\n", err)
			pprof.StopCPUProfile()
			os.Exit(1)
		}
		return
	}

	if *parallelBench {
		if err := runParallelBench(*benchProcs, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "soteria-bench: parallel-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *bddBench {
		if err := runBDDBench(*bddBenchSizes, *bddBenchOut); err != nil {
			fmt.Fprintf(os.Stderr, "soteria-bench: bdd-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	all := *table == "" && *fig == "" && *ablation == ""
	ran := false

	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "soteria-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
		ran = true
	}

	if all || *table == "2" {
		run("table 2", func() error {
			t, err := experiments.Table2()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *table == "3" {
		run("table 3", func() error {
			t, err := experiments.Table3()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *table == "4" {
		run("table 4", func() error {
			t, err := experiments.Table4()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *table == "maliot" {
		run("maliot", func() error {
			t, _, err := experiments.MalIoTTable()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *fig == "11a" {
		run("fig 11a", func() error {
			t, err := experiments.Fig11a()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *fig == "11b" {
		run("fig 11b", func() error {
			s, err := experiments.Fig11b()
			if err != nil {
				return err
			}
			fmt.Print(s.String())
			return nil
		})
	}
	if all || *fig == "union" {
		run("union", func() error {
			t, err := experiments.UnionTiming()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *fig == "verify" {
		run("verify", func() error {
			t, err := experiments.VerificationTiming()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *ablation == "predicates" {
		run("ablation predicates", func() error {
			t, err := experiments.AblationPredicateLabels()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *ablation == "merging" {
		run("ablation merging", func() error {
			t, err := experiments.AblationPathMerging()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}

	if !ran {
		fmt.Fprintln(os.Stderr, "soteria-bench: nothing selected")
		flag.PrintDefaults()
		os.Exit(2)
	}
}

// parallelBenchPoint is one setting in the -parallel-bench sweep:
// sequential vs parallel wall time for a cold full-corpus audit (65
// individual apps + the Table 4 groups) at a fixed GOMAXPROCS, and
// whether the two runs produced identical verdicts.
type parallelBenchPoint struct {
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Parallel          int     `json:"parallel"`
	SequentialFirst   bool    `json:"sequential_first"`
	SequentialMS      float64 `json:"sequential_ms"`
	ParallelMS        float64 `json:"parallel_ms"`
	Speedup           float64 `json:"speedup"`
	VerdictsIdentical bool    `json:"verdicts_identical"`
	// Oversubscribed marks points whose GOMAXPROCS exceeds the host's
	// CPU count: their speedup measures scheduler thrash, not scaling,
	// and must not be read as part of the curve.
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

// parallelBenchResult is the machine-readable trajectory
// -parallel-bench emits: one point per GOMAXPROCS setting, so the
// scaling curve (and its ceiling on a small host) is visible in a
// single artifact. HostCPUs records the physical budget: points with
// gomaxprocs above it can only show oversubscription, never speedup.
type parallelBenchResult struct {
	CorpusApps int                  `json:"corpus_apps"`
	Groups     int                  `json:"groups"`
	HostCPUs   int                  `json:"host_cpus"`
	Points     []parallelBenchPoint `json:"points"`
}

// runParallelBench sweeps the GOMAXPROCS settings in procs, timing two
// cold audits of the whole market corpus at each — workers=1 and
// workers=gomaxprocs (4 when the setting is 1, so the 1-proc point
// honestly shows fan-out without cores buys ~1x). Each audit gets a
// fresh (nil) cache so no run borrows another's work.
//
// Two de-biasing measures: a discarded warmup audit runs first (OS
// page cache, lazily-parsed corpus sources, and runtime JIT-ish
// warmup — GC sizing, map growth — would otherwise be charged entirely
// to whichever run goes first), and the sequential/parallel order
// alternates per sweep point so neither side systematically enjoys the
// warmer process.
func runParallelBench(procs, out string) error {
	ctx := context.Background()
	restore := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(restore)

	// Discarded warmup pass (sequential; results dropped).
	_ = audit.Run(ctx, 1, nil)

	res := parallelBenchResult{HostCPUs: runtime.NumCPU()}
	for i, field := range strings.Split(procs, ",") {
		maxprocs, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || maxprocs < 1 {
			return fmt.Errorf("bad -parallel-bench-procs entry %q", field)
		}
		runtime.GOMAXPROCS(maxprocs)
		parallel := maxprocs
		if parallel < 2 {
			parallel = 4
		}

		var seq, par *audit.Report
		var seqDur, parDur time.Duration
		timeRun := func(workers int) (*audit.Report, time.Duration) {
			t0 := time.Now()
			r := audit.Run(ctx, workers, nil)
			return r, time.Since(t0)
		}
		if i%2 == 0 {
			seq, seqDur = timeRun(1)
			par, parDur = timeRun(parallel)
		} else {
			par, parDur = timeRun(parallel)
			seq, seqDur = timeRun(1)
		}

		res.CorpusApps = len(seq.Apps)
		res.Groups = len(seq.Groups)
		pt := parallelBenchPoint{
			GOMAXPROCS:        maxprocs,
			Parallel:          parallel,
			SequentialFirst:   i%2 == 0,
			SequentialMS:      float64(seqDur.Microseconds()) / 1000,
			ParallelMS:        float64(parDur.Microseconds()) / 1000,
			Speedup:           seqDur.Seconds() / parDur.Seconds(),
			VerdictsIdentical: identicalVerdicts(seq, par),
			Oversubscribed:    maxprocs > res.HostCPUs,
		}
		res.Points = append(res.Points, pt)
		note := ""
		if pt.Oversubscribed {
			note = " [oversubscribed]"
		}
		fmt.Printf("parallel bench @GOMAXPROCS=%d: sequential %.1fms, parallel(%d) %.1fms, speedup %.2fx, verdicts identical: %t%s\n",
			pt.GOMAXPROCS, pt.SequentialMS, pt.Parallel, pt.ParallelMS, pt.Speedup, pt.VerdictsIdentical, note)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	fmt.Printf("parallel bench trajectory (%d points) → %s\n", len(res.Points), out)
	return nil
}

// bddKernelPoint is one kernel's measurement at one model size:
// wall time for the full symbolic check (encode + fixpoints), the
// per-operation cost (wall / ITE-cache lookups, the kernel's unit of
// work), and the kernel's table statistics at the end of the run.
type bddKernelPoint struct {
	WallMS         float64 `json:"wall_ms"`
	NsPerOp        float64 `json:"ns_per_op"`
	Nodes          int     `json:"nodes"`
	UniqueCapacity int     `json:"unique_capacity,omitempty"`
	UniqueLoad     float64 `json:"unique_load,omitempty"`
	Rehashes       int     `json:"rehashes,omitempty"`
	ITELookups     uint64  `json:"ite_lookups"`
	ITEHitRate     float64 `json:"ite_hit_rate"`
	OpLookups      uint64  `json:"op_lookups"`
	OpHitRate      float64 `json:"op_hit_rate"`
}

// bddBenchPoint is one model size in the -bdd-bench sweep: the
// collapse model's actual state count, explicit-engine wall time, and
// the new (open-addressed) vs legacy (map-based) kernel measurements
// for the identical symbolic workload. Agree reports that all three
// engines returned the same verdict and satisfaction set.
type bddBenchPoint struct {
	RequestedStates int            `json:"requested_states"`
	States          int            `json:"states"`
	Domain          int            `json:"domain"`
	ExplicitMS      float64        `json:"explicit_ms"`
	NewKernel       bddKernelPoint `json:"new_kernel"`
	LegacyKernel    bddKernelPoint `json:"legacy_kernel"`
	SpeedupWall     float64        `json:"speedup_wall"`
	SpeedupNsPerOp  float64        `json:"speedup_ns_per_op"`
	Agree           bool           `json:"agree"`
}

// bddBenchResult is the artifact -bdd-bench writes: the swept formula,
// one point per model size, and the host shape for context.
type bddBenchResult struct {
	Formula  string          `json:"formula"`
	HostCPUs int             `json:"host_cpus"`
	Points   []bddBenchPoint `json:"points"`
}

// runBDDBench sweeps synthetic collapse models (statemodel.
// NewSyntheticCollapse, d² states with d = round(√N)) through three
// engines — the explicit-state checker, the symbolic engine over the
// open-addressed kernel, and the same engine over the retained
// map-based legacy kernel — and writes BENCH_bdd.json. The formula is
// EF(dev0.attr=v0 ∧ dev1.attr=v0), a backward-reachability fixpoint
// that converges in ~log₂(N) iterations, so the symbolic engines are
// exercised at 10⁶ states in seconds. The NEW kernel always runs
// before the legacy one: any cache/allocator warmth favors whichever
// runs second, so the recorded speedup is conservative.
func runBDDBench(sizes, out string) error {
	f := ctl.EF{X: ctl.And{L: ctl.Prop{Name: "dev0.attr=v0"}, R: ctl.Prop{Name: "dev1.attr=v0"}}}
	res := bddBenchResult{Formula: f.String(), HostCPUs: runtime.NumCPU()}

	// Warmup: one small end-to-end pass per engine, results discarded,
	// so the first timed point isn't charged for lazy runtime setup.
	if err := func() error {
		m, err := statemodel.NewSyntheticCollapse(8)
		if err != nil {
			return err
		}
		k := kripke.FromModel(m)
		_ = modelcheck.Check(k, f)
		_ = symbolic.New(k).Check(f)
		_ = symbolic.NewWithKernel(k, nil, func(n int) bdd.Kernel { return bdd.NewLegacy(n) }).Check(f)
		return nil
	}(); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}

	for _, field := range strings.Split(sizes, ",") {
		want, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || want < 4 {
			return fmt.Errorf("bad -bdd-bench-sizes entry %q", field)
		}
		d := int(math.Round(math.Sqrt(float64(want))))
		if d < 2 {
			d = 2
		}
		m, err := statemodel.NewSyntheticCollapse(d)
		if err != nil {
			return err
		}
		k := kripke.FromModel(m)

		t0 := time.Now()
		exp := modelcheck.Check(k, f)
		expDur := time.Since(t0)

		t1 := time.Now()
		eng := symbolic.New(k)
		newRes := eng.Check(f)
		newDur := time.Since(t1)
		newPt := kernelPoint(newDur, eng.KernelStats())

		t2 := time.Now()
		leg := symbolic.NewWithKernel(k, nil, func(n int) bdd.Kernel { return bdd.NewLegacy(n) })
		legRes := leg.Check(f)
		legDur := time.Since(t2)
		legPt := kernelPoint(legDur, leg.KernelStats())

		pt := bddBenchPoint{
			RequestedStates: want,
			States:          k.N,
			Domain:          d,
			ExplicitMS:      float64(expDur.Microseconds()) / 1000,
			NewKernel:       newPt,
			LegacyKernel:    legPt,
			SpeedupWall:     legDur.Seconds() / newDur.Seconds(),
			Agree: exp.Holds == newRes.Holds && exp.Holds == legRes.Holds &&
				sameSat(exp.Sat, newRes.Sat) && sameSat(exp.Sat, legRes.Sat),
		}
		if newPt.NsPerOp > 0 {
			pt.SpeedupNsPerOp = legPt.NsPerOp / newPt.NsPerOp
		}
		res.Points = append(res.Points, pt)
		fmt.Printf("bdd bench @%d states (d=%d): explicit %.1fms, new kernel %.1fms (%.1f ns/op, %d nodes, load %.2f, ite hit %.2f), legacy %.1fms (%.1f ns/op), speedup %.2fx wall / %.2fx ns/op, agree: %t\n",
			pt.States, d, pt.ExplicitMS,
			newPt.WallMS, newPt.NsPerOp, newPt.Nodes, newPt.UniqueLoad, newPt.ITEHitRate,
			legPt.WallMS, legPt.NsPerOp, pt.SpeedupWall, pt.SpeedupNsPerOp, pt.Agree)
	}

	fo, err := os.Create(out)
	if err != nil {
		return err
	}
	defer fo.Close()
	enc := json.NewEncoder(fo)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	fmt.Printf("bdd bench sweep (%d points) → %s\n", len(res.Points), out)
	return nil
}

func kernelPoint(dur time.Duration, st bdd.Stats) bddKernelPoint {
	p := bddKernelPoint{
		WallMS:         float64(dur.Microseconds()) / 1000,
		Nodes:          st.Nodes,
		UniqueCapacity: st.UniqueCapacity,
		UniqueLoad:     st.UniqueLoad,
		Rehashes:       st.Rehashes,
		ITELookups:     st.ITELookups,
		ITEHitRate:     st.ITEHitRate,
		OpLookups:      st.OpLookups,
		OpHitRate:      st.OpHitRate,
	}
	if st.ITELookups > 0 {
		p.NsPerOp = float64(dur.Nanoseconds()) / float64(st.ITELookups)
	}
	return p
}

func sameSat(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func identicalVerdicts(a, b *audit.Report) bool {
	same := func(x, y []audit.Entry) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i].ID != y[i].ID || x[i].Incomplete != y[i].Incomplete ||
				len(x[i].Violated) != len(y[i].Violated) {
				return false
			}
			for j := range x[i].Violated {
				if x[i].Violated[j] != y[i].Violated[j] {
					return false
				}
			}
		}
		return true
	}
	return same(a.Apps, b.Apps) && same(a.Groups, b.Groups)
}
