// Command soteria-bench regenerates every table and figure of the
// paper's evaluation (§6) from the reproduction's corpora.
//
// Usage:
//
//	soteria-bench                 # everything
//	soteria-bench -table 2|3|4|maliot
//	soteria-bench -fig 11a|11b|union|verify
//	soteria-bench -ablation predicates|merging
//	soteria-bench -parallel N     # fan experiment analyses out over N workers
//	soteria-bench -parallel-bench # time sequential vs parallel corpus audit,
//	                              # write BENCH_parallel.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/soteria-analysis/soteria/internal/experiments"
	"github.com/soteria-analysis/soteria/internal/market/audit"
)

func main() {
	table := flag.String("table", "", "regenerate one table: 2, 3, 4, or maliot")
	fig := flag.String("fig", "", "regenerate one figure: 11a, 11b, union, or verify")
	ablation := flag.String("ablation", "", "run one ablation: predicates or merging")
	parallel := flag.Int("parallel", 1, "fan batch analyses out over this many workers (outputs are identical at any setting)")
	parallelBench := flag.Bool("parallel-bench", false, "benchmark a sequential vs parallel market audit and write BENCH_parallel.json")
	benchOut := flag.String("parallel-bench-out", "BENCH_parallel.json", "output path for -parallel-bench")
	flag.Parse()

	experiments.Parallel = *parallel

	if *parallelBench {
		if err := runParallelBench(*parallel, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "soteria-bench: parallel-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	all := *table == "" && *fig == "" && *ablation == ""
	ran := false

	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "soteria-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
		ran = true
	}

	if all || *table == "2" {
		run("table 2", func() error {
			t, err := experiments.Table2()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *table == "3" {
		run("table 3", func() error {
			t, err := experiments.Table3()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *table == "4" {
		run("table 4", func() error {
			t, err := experiments.Table4()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *table == "maliot" {
		run("maliot", func() error {
			t, _, err := experiments.MalIoTTable()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *fig == "11a" {
		run("fig 11a", func() error {
			t, err := experiments.Fig11a()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *fig == "11b" {
		run("fig 11b", func() error {
			s, err := experiments.Fig11b()
			if err != nil {
				return err
			}
			fmt.Print(s.String())
			return nil
		})
	}
	if all || *fig == "union" {
		run("union", func() error {
			t, err := experiments.UnionTiming()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *fig == "verify" {
		run("verify", func() error {
			t, err := experiments.VerificationTiming()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *ablation == "predicates" {
		run("ablation predicates", func() error {
			t, err := experiments.AblationPredicateLabels()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}
	if all || *ablation == "merging" {
		run("ablation merging", func() error {
			t, err := experiments.AblationPathMerging()
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			return nil
		})
	}

	if !ran {
		fmt.Fprintln(os.Stderr, "soteria-bench: nothing selected")
		flag.PrintDefaults()
		os.Exit(2)
	}
}

// parallelBenchResult is the machine-readable record -parallel-bench
// emits: sequential vs parallel wall time for a cold full-corpus audit
// (65 individual apps + the Table 4 groups), and whether the two runs
// produced identical verdicts.
type parallelBenchResult struct {
	CorpusApps        int     `json:"corpus_apps"`
	Groups            int     `json:"groups"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Parallel          int     `json:"parallel"`
	SequentialMS      float64 `json:"sequential_ms"`
	ParallelMS        float64 `json:"parallel_ms"`
	Speedup           float64 `json:"speedup"`
	VerdictsIdentical bool    `json:"verdicts_identical"`
}

// runParallelBench times two cold audits of the whole market corpus —
// workers=1, then workers=parallel — and writes the comparison as
// JSON. Each audit gets a fresh (nil) cache so the parallel run cannot
// borrow the sequential run's work; with GOMAXPROCS=1 the speedup
// honestly reports ~1x, scaling with available cores.
func runParallelBench(parallel int, out string) error {
	if parallel < 2 {
		parallel = runtime.GOMAXPROCS(0)
		if parallel < 2 {
			parallel = 4
		}
	}
	ctx := context.Background()

	t0 := time.Now()
	seq := audit.Run(ctx, 1, nil)
	seqDur := time.Since(t0)

	t1 := time.Now()
	par := audit.Run(ctx, parallel, nil)
	parDur := time.Since(t1)

	res := parallelBenchResult{
		CorpusApps:        len(seq.Apps),
		Groups:            len(seq.Groups),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Parallel:          parallel,
		SequentialMS:      float64(seqDur.Microseconds()) / 1000,
		ParallelMS:        float64(parDur.Microseconds()) / 1000,
		Speedup:           seqDur.Seconds() / parDur.Seconds(),
		VerdictsIdentical: identicalVerdicts(seq, par),
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	fmt.Printf("parallel bench: sequential %.1fms, parallel(%d) %.1fms, speedup %.2fx, verdicts identical: %t → %s\n",
		res.SequentialMS, res.Parallel, res.ParallelMS, res.Speedup, res.VerdictsIdentical, out)
	return nil
}

func identicalVerdicts(a, b *audit.Report) bool {
	same := func(x, y []audit.Entry) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i].ID != y[i].ID || x[i].Incomplete != y[i].Incomplete ||
				len(x[i].Violated) != len(y[i].Violated) {
				return false
			}
			for j := range x[i].Violated {
				if x[i].Violated[j] != y[i].Violated[j] {
					return false
				}
			}
		}
		return true
	}
	return same(a.Apps, b.Apps) && same(a.Groups, b.Groups)
}
