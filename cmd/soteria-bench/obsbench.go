package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/obs"
	"github.com/soteria-analysis/soteria/internal/paperapps"
)

// obsBenchResult is the artifact -obs-bench writes: the telemetry
// layer's overhead on a full single-app analysis, tracing disabled vs
// enabled, with the acceptance bound it was checked against.
// OnMedianUS is reconstructed as OffMedianUS plus the order-balanced
// median of paired (on − off) differences — see runObsBench.
type obsBenchResult struct {
	App          string  `json:"app"`
	Pairs        int     `json:"pairs"`
	HostCPUs     int     `json:"host_cpus"`
	OffMedianUS  float64 `json:"off_median_us"`
	OnMedianUS   float64 `json:"on_median_us"`
	OverheadPct  float64 `json:"overhead_pct"`
	BoundPct     float64 `json:"bound_pct"`
	SpansPerRun  int     `json:"spans_per_run"`
	WithinBudget bool    `json:"within_budget"`
}

// runObsBench measures what span tracing costs a full analysis
// pipeline: the same Smoke-Alarm analysis runs with a bare context
// (spans no-op at the nil check) and with a live root span.
//
// Shared hosts drift (thermal, noisy neighbors, GC phase) on time
// scales far longer than one run, so independent medians of the two
// modes mostly measure when each mode happened to run, not what it
// cost. The harness therefore measures *paired differences*: each
// pair runs both modes back to back (drift is near-constant across
// adjacent runs, so it cancels in the difference), alternating which
// mode goes first (canceling the second-run-is-warmer effect —
// order-balanced median of the signed differences), after a forced GC
// per pair (consistent heap phase) and a discarded warmup pass. The
// result must stay under the 3% budget — tracing is always-on in
// soteriad, so regressions here are production regressions.
func runObsBench(pairs int, out string) error {
	if pairs < 8 {
		pairs = 8
	}
	if pairs%2 == 1 {
		pairs++ // equal counts of off-first and on-first pairs
	}
	ctx := context.Background()
	src := core.NamedSource{Name: "smoke-alarm", Source: paperapps.SmokeAlarm}

	runOff := func() (time.Duration, error) {
		t0 := time.Now()
		_, err := core.AnalyzeSourcesContext(ctx, core.DefaultOptions(), src)
		return time.Since(t0), err
	}
	spans := 0
	runOn := func() (time.Duration, error) {
		root := obs.NewRoot("bench")
		t0 := time.Now()
		_, err := core.AnalyzeSourcesContext(obs.WithSpan(ctx, root), core.DefaultOptions(), src)
		d := time.Since(t0)
		root.End()
		n := 0
		root.Walk(func(int, *obs.Span) { n++ })
		spans = n
		return d, err
	}

	// Warmup, both modes, discarded.
	for i := 0; i < 3; i++ {
		if _, err := runOff(); err != nil {
			return err
		}
		if _, err := runOn(); err != nil {
			return err
		}
	}

	var offs []float64
	var diffOffFirst, diffOnFirst []float64 // on − off, µs, by pair order
	for i := 0; i < pairs; i++ {
		runtime.GC()
		var off, on time.Duration
		var err error
		if i%2 == 0 {
			if off, err = runOff(); err != nil {
				return err
			}
			if on, err = runOn(); err != nil {
				return err
			}
			diffOffFirst = append(diffOffFirst, float64((on-off).Nanoseconds())/1000)
		} else {
			if on, err = runOn(); err != nil {
				return err
			}
			if off, err = runOff(); err != nil {
				return err
			}
			diffOnFirst = append(diffOnFirst, float64((on-off).Nanoseconds())/1000)
		}
		offs = append(offs, float64(off.Nanoseconds())/1000)
	}
	// Each order's median difference carries the same tracing cost but
	// an opposite-signed second-run warmth bias; their mean keeps the
	// cost and cancels the bias.
	diffUS := (median(diffOffFirst) + median(diffOnFirst)) / 2

	res := obsBenchResult{
		App:         "smoke-alarm",
		Pairs:       pairs,
		HostCPUs:    runtime.NumCPU(),
		OffMedianUS: median(offs),
		BoundPct:    3.0,
		SpansPerRun: spans,
	}
	res.OnMedianUS = res.OffMedianUS + diffUS
	res.OverheadPct = diffUS / res.OffMedianUS * 100
	res.WithinBudget = res.OverheadPct < res.BoundPct

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	fmt.Printf("obs bench: %d pairs, tracing off %.0fus / on %.0fus median (%d spans/run), overhead %.2f%% (budget %.0f%%) → %s\n",
		pairs, res.OffMedianUS, res.OnMedianUS, res.SpansPerRun, res.OverheadPct, res.BoundPct, out)
	if !res.WithinBudget {
		return fmt.Errorf("tracing overhead %.2f%% exceeds the %.0f%% budget", res.OverheadPct, res.BoundPct)
	}
	return nil
}

func median(xs []float64) float64 {
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
