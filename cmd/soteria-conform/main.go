// Command soteria-conform cross-checks Soteria's model-checking
// engines against each other: it generates seeded random (model,
// formula) cases, decides each with the explicit-state, BDD-symbolic,
// and SAT/BMC engines, re-parses the SMV emission, and replays every
// counterexample and witness path against the structure. Any
// disagreement is minimized to a small reproducer and reported with a
// non-zero exit.
//
// Usage:
//
//	soteria-conform -seed 1 -count 500
//	soteria-conform -seed 7 -count 5000 -engines explicit,bdd
//	soteria-conform -states 20 -density 0.3 -depth 7 -no-shrink
//	soteria-conform -golden            # print the golden-corpus verdicts
//	soteria-conform -taint 200         # taint differential: 200 seeded
//	                                   # tainted/sanitized app pairs
//	soteria-conform -golden-taint      # print the golden taint verdicts
//
// Exit status: 0 on full agreement, 1 on any mismatch, 2 on bad flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/soteria-analysis/soteria/internal/conformance"
)

func main() {
	seed := flag.Int64("seed", 1, "generator seed (equal seeds generate equal case sequences)")
	count := flag.Int("count", 500, "number of (model, formula) cases")
	engines := flag.String("engines", "explicit,bdd,bmc", "comma-separated engine subset to cross-check")
	noShrink := flag.Bool("no-shrink", false, "report disagreements unminimized")
	maxVars := flag.Int("vars", 0, "max state variables per model (0 = default)")
	maxStates := flag.Int("states", 0, "max states per model (0 = default)")
	density := flag.Float64("density", 0, "transition density 0..1 (0 = default)")
	depth := flag.Int("depth", 0, "max formula nesting depth (0 = default)")
	maxMismatches := flag.Int("max-mismatches", 5, "stop after this many disagreements (0 = collect all)")
	golden := flag.Bool("golden", false, "print the golden-corpus verdicts (paper properties over paperapps) and exit")
	taintCount := flag.Int("taint", 0, "run the taint differential over this many seeded tainted/sanitized app pairs and exit")
	goldenTaint := flag.Bool("golden-taint", false, "print the golden taint verdicts and exit")
	quiet := flag.Bool("q", false, "suppress the summary line")
	flag.Parse()

	if *golden {
		out, err := conformance.GoldenReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "soteria-conform: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	if *goldenTaint {
		out, err := conformance.TaintGoldenReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "soteria-conform: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	if *taintCount > 0 {
		t0 := time.Now()
		rep := conformance.RunTaint(conformance.TaintOptions{
			Seed:          *seed,
			Count:         *taintCount,
			MaxMismatches: *maxMismatches,
		})
		if !*quiet {
			fmt.Printf("soteria-conform: taint differential seed=%d pairs=%d mismatches=%d (%.2fs)\n",
				*seed, rep.Cases, len(rep.Mismatches), time.Since(t0).Seconds())
		}
		for i, m := range rep.Mismatches {
			fmt.Printf("--- taint mismatch %d/%d ---\n%s\n", i+1, len(rep.Mismatches), m.Error())
		}
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}

	es, err := conformance.ParseEngineSet(*engines)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soteria-conform: %v\n", err)
		os.Exit(2)
	}
	cfg := conformance.DefaultGenConfig()
	if *maxVars > 0 {
		cfg.MaxVars = *maxVars
	}
	if *maxStates > 0 {
		cfg.MaxStates = *maxStates
	}
	if *density > 0 {
		cfg.Density = *density
	}
	if *depth > 0 {
		cfg.MaxFormulaDepth = *depth
	}

	t0 := time.Now()
	rep := conformance.Run(conformance.Options{
		Seed:          *seed,
		Count:         *count,
		Engines:       es,
		Gen:           cfg,
		Shrink:        !*noShrink,
		MaxMismatches: *maxMismatches,
	})
	if !*quiet {
		fmt.Printf("soteria-conform: seed=%d cases=%d engines=%s engine-runs=%d replayed-paths=%d mismatches=%d (%.2fs)\n",
			*seed, rep.Cases, es.String(), rep.EngineRuns, rep.ReplayedPaths, len(rep.Mismatches),
			time.Since(t0).Seconds())
	}
	for i, m := range rep.Mismatches {
		fmt.Printf("--- mismatch %d/%d ---\n%s\n", i+1, len(rep.Mismatches), m.Error())
	}
	if !rep.OK() {
		os.Exit(1)
	}
}
