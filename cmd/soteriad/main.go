// Command soteriad runs the Soteria analyzer as a long-lived service:
// an HTTP JSON API backed by a bounded job queue, per-job resource
// budgets, and a persistent content-addressed result store.
//
// Usage:
//
//	soteriad [flags]
//
// Flags:
//
//	-addr A         listen address (default :8380)
//	-store DIR      result store directory ("" disables persistence)
//	-journal PATH   durable job journal ("" disables crash recovery)
//	-peers LIST     comma-separated fleet member URLs, self included
//	                ("" runs single-node)
//	-node URL       this node's advertised base URL (required with -peers)
//	-vnodes N       consistent-hash virtual nodes per member (default 128)
//	-workers N      concurrent analysis workers (default GOMAXPROCS)
//	-queue N        queued-job bound before 429 backpressure (default 64)
//	-job-timeout D  wall-clock ceiling per job (default 60s)
//	-parallel N     property-check workers per analysis (default 1)
//	-max-states N   per-job state-model cap (0 = unlimited)
//	-max-body N     request body cap in bytes (default 8 MiB)
//	-drain-timeout D grace period for in-flight jobs on SIGTERM (default 30s)
//	-slow-job D     log the full span tree of jobs at or over D (0 disables)
//	-pprof A        serve net/http/pprof on a separate listener ("" disables)
//	-log-json       emit JSON log lines instead of text
//
// With -journal, every accepted job is fsynced into an append-only
// journal before the client sees its acknowledgment; on restart the
// journal is replayed, incomplete jobs re-enqueue under their original
// IDs, and client idempotency keys dedupe resubmissions — so a crash
// (SIGKILL, OOM, power cut) never loses an acknowledged job.
//
// Logs are structured (log/slog); every line about a job carries the
// job ID and its trace ID (also returned to clients in the
// X-Soteria-Trace response header), so a client-reported trace can be
// grepped straight to the server-side timeline.
//
// -pprof binds the Go runtime profiler (CPU, heap, goroutine, block)
// to its own listener, kept off the API address so profiling exposure
// is an explicit, separately firewallable choice.
//
// Setting SOTERIAD_CHAOS_FS=1 in the environment fragments and delays
// store/journal writes to widen crash windows; it exists for the
// kill-restart test harness, never for production.
//
// With -peers, N soteriad processes form one fleet: a consistent-hash
// ring over analysis keys assigns each key an owning node, requests
// route to their owner (federating batch results across nodes), and
// the result store reads and writes through the owning replica. Every
// node must be started with the same -peers list; membership is
// static, and an unreachable owner degrades to local analysis rather
// than failing the request.
//
// Endpoints: POST /v1/analyze, POST /v1/batch, GET /v1/jobs/{id},
// GET+PUT /v1/results/{hash}, GET /v1/cluster/status, GET /healthz,
// GET /metrics. On SIGTERM or
// SIGINT the daemon stops accepting work, drains queued and in-flight
// jobs (up to -drain-timeout, after which their budgets are canceled
// and they finish as partial results), then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/soteria-analysis/soteria"
)

func main() {
	var (
		addr         = flag.String("addr", ":8380", "listen address")
		storeDir     = flag.String("store", "soteriad-store", "result store directory (empty disables persistence)")
		journalPath  = flag.String("journal", "", "durable job journal path (empty disables crash recovery)")
		workers      = flag.Int("workers", 0, "concurrent analysis workers (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "queued-job bound before 429 backpressure")
		jobTimeout   = flag.Duration("job-timeout", 60*time.Second, "wall-clock ceiling per job")
		parallel     = flag.Int("parallel", 1, "property-check workers per analysis")
		maxStates    = flag.Int("max-states", 0, "per-job state-model cap (0 = unlimited)")
		maxBody      = flag.Int64("max-body", 8<<20, "request body cap in bytes")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
		slowJob      = flag.Duration("slow-job", 0, "log the span tree of jobs at or over this wall time (0 disables)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this separate address (empty disables)")
		logJSON      = flag.Bool("log-json", false, "emit JSON log lines instead of text")
		peers        = flag.String("peers", "", "comma-separated fleet member URLs, self included (empty = single node)")
		nodeURL      = flag.String("node", "", "this node's advertised base URL (required with -peers)")
		vnodes       = flag.Int("vnodes", 0, "consistent-hash virtual nodes per member (0 = 128)")
	)
	flag.Parse()
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	chaosFS := os.Getenv("SOTERIAD_CHAOS_FS") != ""
	if chaosFS {
		logger.Warn("SOTERIAD_CHAOS_FS set: store/journal writes fragmented and delayed (test harness mode)")
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if *nodeURL == "" {
			logger.Error("-peers requires -node (this node's advertised URL)")
			os.Exit(2)
		}
	}
	svc, err := soteria.NewService(soteria.ServiceConfig{
		Workers:          *workers,
		QueueDepth:       *queue,
		JobTimeout:       *jobTimeout,
		Parallel:         *parallel,
		MaxBodyBytes:     *maxBody,
		Limits:           soteria.Limits{MaxStates: *maxStates},
		StoreDir:         *storeDir,
		JournalPath:      *journalPath,
		ChaosFS:          chaosFS,
		Logger:           logger,
		SlowJobThreshold: *slowJob,
		Peers:            peerList,
		SelfURL:          *nodeURL,
		VirtualNodes:     *vnodes,
	})
	if err != nil {
		logger.Error("starting service", "error", err)
		os.Exit(1)
	}

	errc := make(chan error, 2)
	// The profiler gets its own listener and server so binding it is an
	// explicit operational choice, never reachable through the API port.
	// net/http/pprof registers on http.DefaultServeMux; the API handler
	// below uses its own mux, so the default mux holds only pprof.
	if *pprofAddr != "" {
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: http.DefaultServeMux}
		go func() { errc <- fmt.Errorf("pprof server: %w", pprofSrv.ListenAndServe()) }()
		logger.Info("pprof listening", "addr", *pprofAddr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	go func() { errc <- fmt.Errorf("http server: %w", httpSrv.ListenAndServe()) }()
	attrs := []any{"addr", *addr, "store", *storeDir, "journal", *journalPath, "queue", *queue}
	if len(peerList) > 0 {
		attrs = append(attrs, "node", *nodeURL, "fleet_members", len(peerList))
	}
	logger.Info("listening", attrs...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		logger.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: reject new jobs (and fail health checks) first, finish the
	// queued and in-flight work, then close HTTP listeners.
	logger.Info("shutdown signal received, draining", "timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		logger.Warn("drain deadline passed, remaining jobs canceled", "error", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "error", err)
	}
	logger.Info("drained, exiting")
	fmt.Fprintln(os.Stderr, "soteriad: stopped")
}
