package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/soteria-analysis/soteria/internal/client"
	"github.com/soteria-analysis/soteria/internal/report"
)

// remoteRun is a -remote invocation's parameters.
type remoteRun struct {
	baseURL       string
	idemKey       string
	paths         []string
	general       bool
	specific      bool
	taint         bool
	properties    []string
	parallel      int
	timeout       time.Duration
	maxStates     int
	jsonOut       bool
	explainTiming bool
}

// runRemote submits the apps to a soteriad instance through the
// resilient client and renders the returned record with the same exit
// codes as a local run.
func runRemote(run remoteRun) int {
	var apps []client.App
	for _, path := range run.paths {
		src, err := os.ReadFile(path)
		if err != nil {
			fail("reading %s: %v", path, err)
		}
		apps = append(apps, client.App{Name: filepath.Base(path), Source: string(src)})
	}

	opts := &client.Options{MaxStates: run.maxStates, Properties: run.properties}
	if run.general || run.specific || run.taint {
		// Family flags combine: naming any of them checks exactly the
		// named families (same semantics as a local run).
		opts.General = &run.general
		opts.AppSpecific = &run.specific
		opts.Taint = &run.taint
	}
	if run.parallel > 1 {
		opts.Parallel = run.parallel
	}
	if run.timeout > 0 {
		opts.TimeoutMS = run.timeout.Milliseconds()
	}

	c, err := client.New(client.Config{BaseURL: run.baseURL})
	if err != nil {
		fail("%v", err)
	}
	ctx := context.Background()
	if run.timeout > 0 {
		// The request deadline leaves headroom over the analysis budget
		// for queueing and transport.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, run.timeout+30*time.Second)
		defer cancel()
	}

	j, err := c.Analyze(ctx, client.AnalyzeRequest{
		Apps:           apps,
		Options:        opts,
		IdempotencyKey: run.idemKey,
		Timings:        run.explainTiming,
	})
	if err != nil {
		fail("remote analysis: %v", err)
	}
	if !j.Terminal() {
		// A sync submission normally returns terminal; a poll handle can
		// still surface (e.g. the submitting connection broke and the
		// retry raced the job) — follow it.
		if j, err = c.Wait(ctx, j.JobID); err != nil {
			fail("remote analysis: polling job %s: %v", j.JobID, err)
		}
	}
	if j.Status == "failed" || j.Result == nil {
		fail("remote analysis: job %s %s: %s", j.JobID, j.Status, j.Error)
	}
	if run.explainTiming {
		renderTiming(j.Result.Timing, j.Trace)
	}
	return renderRecord(j.Result, j.Cached, run.jsonOut)
}

// renderTiming prints the daemon-recorded span tree to stderr, with
// the trace ID operators can grep in the daemon's logs.
func renderTiming(t *report.Timing, trace string) {
	if t == nil || t.Span == nil {
		fmt.Fprintln(os.Stderr, "timing: not returned by the daemon (cached result from an older daemon?)")
		return
	}
	if trace == "" {
		trace = t.TraceID
	}
	fmt.Fprintf(os.Stderr, "timing (trace %s):\n", trace)
	var walk func(sp *report.TimedSpan, depth int)
	walk = func(sp *report.TimedSpan, depth int) {
		fmt.Fprintf(os.Stderr, "%*s%s %s", depth*2+2, "", sp.Name, time.Duration(sp.DurationUS)*time.Microsecond)
		for _, a := range sp.Attrs {
			fmt.Fprintf(os.Stderr, " %s=%s", a.Key, a.Value)
		}
		fmt.Fprintln(os.Stderr)
		for _, ch := range sp.Children {
			walk(ch, depth+1)
		}
	}
	walk(t.Span, 0)
}

// renderRecord prints a stored record and maps it to the documented
// exit codes (incomplete over violations, like a local run).
func renderRecord(rec *report.Record, cached bool, jsonOut bool) int {
	code := 0
	switch {
	case rec.Incomplete:
		code = 3
	case len(rec.Violations) > 0:
		code = 1
	}
	if jsonOut {
		data, err := report.Encode(rec)
		if err != nil {
			fail("json: %v", err)
		}
		var buf bytes.Buffer
		if err := json.Indent(&buf, data, "", "  "); err != nil {
			fail("json: %v", err)
		}
		fmt.Println(buf.String())
		return code
	}
	fmt.Printf("model: %d states (%d before reduction), %d transitions\n",
		rec.States, rec.StatesBeforeReduction, rec.Transitions)
	if cached {
		fmt.Println("served from the daemon's result store (cached)")
	}
	if len(rec.Violations) == 0 {
		fmt.Println("no property violations found")
	}
	for _, v := range rec.Violations {
		fmt.Printf("VIOLATION %s [%s]: %s\n  %s\n", v.ID, v.Kind, v.Description, v.Detail)
		// Taint witnesses render in full in the flow section below.
		if v.Counterexample != "" && v.Kind != "taint" {
			fmt.Printf("  counterexample: %s\n", v.Counterexample)
		}
	}
	for _, f := range rec.TaintFlows {
		fmt.Printf("TAINT FLOW %s [%s]: %s -> %s (%s channel, line %d)\n",
			f.ID, f.App, f.Source, f.Sink, f.Channel, f.Line)
		for _, step := range f.Witness {
			fmt.Printf("  %s\n", step)
		}
	}
	if rec.Incomplete {
		fmt.Println("ANALYSIS INCOMPLETE:")
		for _, d := range rec.Diagnostics {
			fmt.Printf("  %s: %s\n", d.Stage, d.Message)
		}
	}
	return code
}
