// Command soteria analyzes SmartThings IoT apps for safety and
// security property violations.
//
// Usage:
//
//	soteria [flags] app.groovy [app2.groovy ...]
//
// With several files the apps are analyzed together as one environment
// (the paper's multi-app analysis). The family flags (-general,
// -specific, -taint) combine: naming any of them checks exactly the
// named families. Flags:
//
//	-ir        print each app's intermediate representation
//	-dot       print the state model in Graphviz format
//	-smv       print the model in NuSMV input format
//	-formula F additionally check the CTL formula F
//	-engine E  CTL backend for -formula: explicit (default), bdd, bmc
//	-ltl F     additionally check the LTL formula F over all paths
//	-witness F produce a trace demonstrating an existential formula
//	-general   check only the general properties (S.1–S.5)
//	-specific  check only the app-specific properties (P.1–P.30)
//	-taint     check only the taint properties (T.1–T.6)
//	-properties IDs check only the listed property IDs (comma-separated,
//	           e.g. "P.10,T.2"; "T.*" selects the whole taint family)
//	-parallel N check properties with N concurrent workers
//	-timeout D abort the analysis after the wall-clock duration D
//	-max-states N cap state-model enumeration at N states
//	-json      emit the analysis result as JSON
//	-list      list the property catalogue and exit
//	-remote URL analyze via a soteriad instance instead of locally
//	-idempotency-key K dedupe key for -remote resubmissions
//	-explain-timing print the analysis span tree (where the time went)
//
// -explain-timing prints a per-phase timing tree to stderr: parse →
// state model → Kripke structure → property checks, with each
// property's engine attempts (and fallback reasons) nested below.
// Locally the tree is recorded in-process; with -remote the daemon
// embeds its span tree (and the job's trace ID) in the response.
//
// With -remote the apps are submitted to a running soteriad over its
// HTTP API through the resilient client: transient failures retry with
// backoff honoring Retry-After, and an idempotency key (auto-generated
// unless -idempotency-key is given) keeps retries from analyzing
// twice — even across a daemon crash and restart. The model/trace
// flags (-ir, -dot, -smv, -formula, -ltl, -witness) are local-only.
//
// Exit codes: 0 — analysis complete, no violations; 1 — violations
// found; 2 — usage or input errors; 3 — analysis incomplete (resource
// budget exhausted or an internal fault was contained).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/soteria-analysis/soteria"
	"github.com/soteria-analysis/soteria/internal/obs"
)

func main() {
	var (
		showIR    = flag.Bool("ir", false, "print each app's intermediate representation")
		showDot   = flag.Bool("dot", false, "print the state model in Graphviz format")
		showSMV   = flag.Bool("smv", false, "print the model in NuSMV format")
		formula   = flag.String("formula", "", "additionally check this CTL formula")
		engine    = flag.String("engine", "explicit", "model-checking engine: explicit, bdd, or bmc")
		witness   = flag.String("witness", "", "produce a trace demonstrating this existential CTL formula (EX/EF/EU/EG)")
		ltlProp   = flag.String("ltl", "", "additionally check this LTL formula (G/F/X/U/R) over all paths")
		general   = flag.Bool("general", false, "check only general properties (S.1-S.5)")
		specific  = flag.Bool("specific", false, "check only app-specific properties (P.1-P.30)")
		taintOnly = flag.Bool("taint", false, "check only taint properties (T.1-T.6)")
		propIDs   = flag.String("properties", "", "check only these comma-separated property IDs (e.g. \"P.10,T.2\"; \"T.*\" selects the taint family)")
		list      = flag.Bool("list", false, "list the property catalogue and exit")
		jsonOut   = flag.Bool("json", false, "emit the analysis result as JSON")
		parallel  = flag.Int("parallel", 1, "check properties with this many concurrent workers (results are identical at any setting)")
		timeout   = flag.Duration("timeout", 0, "abort the analysis after this wall-clock duration (0 = no limit)")
		maxStates = flag.Int("max-states", 0, "cap state-model enumeration at this many states (0 = no limit)")
		remote    = flag.String("remote", "", "analyze via the soteriad instance at this base URL instead of locally")
		idemKey   = flag.String("idempotency-key", "", "idempotency key for -remote submissions (default: auto-generated)")
		explain   = flag.Bool("explain-timing", false, "print the analysis span tree (phase and engine timings) to stderr")
	)
	flag.Parse()

	if *list {
		ids := soteria.PropertyIDs()
		var keys []string
		for id := range ids {
			keys = append(keys, id)
		}
		sort.Slice(keys, func(i, j int) bool {
			return num(keys[i]) < num(keys[j])
		})
		for _, id := range keys {
			fmt.Printf("%-5s %s\n", id, ids[id])
		}
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: soteria [flags] app.groovy [app2.groovy ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *remote != "" {
		if *showIR || *showDot || *showSMV || *formula != "" || *ltlProp != "" || *witness != "" {
			fail("-ir, -dot, -smv, -formula, -ltl, and -witness are local-only (not with -remote)")
		}
		os.Exit(runRemote(remoteRun{
			baseURL:       *remote,
			idemKey:       *idemKey,
			paths:         flag.Args(),
			general:       *general,
			specific:      *specific,
			taint:         *taintOnly,
			properties:    splitIDs(*propIDs),
			parallel:      *parallel,
			timeout:       *timeout,
			maxStates:     *maxStates,
			jsonOut:       *jsonOut,
			explainTiming: *explain,
		}))
	}

	var apps []*soteria.App
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fail("reading %s: %v", path, err)
		}
		name := filepath.Base(path)
		app, err := soteria.ParseApp(name, string(src))
		if err != nil {
			fail("parsing %s: %v", path, err)
		}
		for _, w := range app.Warnings() {
			fmt.Fprintf(os.Stderr, "warning: %s: %s\n", name, w)
		}
		if *showIR {
			fmt.Println(app.IR())
		}
		apps = append(apps, app)
	}

	var opts []soteria.Option
	if *general || *specific || *taintOnly {
		opts = append(opts, soteria.WithChecks(*general, *specific, *taintOnly))
	}
	if ids := splitIDs(*propIDs); len(ids) > 0 {
		opts = append(opts, soteria.WithProperties(ids...))
	}
	if *parallel > 1 {
		opts = append(opts, soteria.WithParallel(*parallel))
	}
	if *timeout > 0 || *maxStates > 0 {
		opts = append(opts, soteria.WithLimits(soteria.Limits{
			Timeout:   *timeout,
			MaxStates: *maxStates,
		}))
	}

	ctx := context.Background()
	var root *obs.Span
	if *explain {
		root = obs.NewRoot("analysis")
		ctx = obs.WithSpan(ctx, root)
	}
	res, err := soteria.AnalyzeEnvironmentContext(ctx, apps, opts...)
	if err != nil {
		fail("analysis: %v", err)
	}
	if root != nil {
		root.End()
		fmt.Fprintf(os.Stderr, "timing:\n%s", root.Render())
	}

	if *jsonOut {
		// The schema-versioned canonical record — the same bytes
		// soteriad stores and serves, re-indented for the terminal.
		data, err := res.JSON()
		if err != nil {
			fail("json: %v", err)
		}
		var buf bytes.Buffer
		if err := json.Indent(&buf, data, "", "  "); err != nil {
			fail("json: %v", err)
		}
		fmt.Println(buf.String())
		os.Exit(exitCode(res))
	}

	fmt.Printf("model: %d states (%d before reduction), %d transitions\n",
		res.States, res.StatesBeforeReduction, res.Transitions)

	if *showDot {
		fmt.Println(res.DOT())
	}
	if *showSMV {
		fmt.Println(res.SMV())
	}

	if len(res.Violations) == 0 {
		fmt.Println("no property violations found")
	}
	for _, v := range res.Violations {
		fmt.Printf("VIOLATION %s [%s]: %s\n  %s\n", v.ID, v.Kind, v.Description, v.Detail)
		// Taint witnesses render in full in the flow section below.
		if v.Counterexample != "" && v.Kind != soteria.TaintViolation {
			fmt.Printf("  counterexample: %s\n", v.Counterexample)
		}
	}
	for _, f := range res.TaintFlows {
		fmt.Printf("TAINT FLOW %s [%s]: %s -> %s (%s channel, line %d)\n",
			f.ID, f.App, f.Source, f.Sink, f.Channel, f.Line)
		for _, step := range f.Witness {
			fmt.Printf("  %s\n", step)
		}
	}

	if *formula != "" {
		holds, cex, err := res.CheckFormulaEngine(*formula, soteria.Engine(*engine))
		if err != nil {
			fail("formula: %v", err)
		}
		if holds {
			fmt.Printf("FORMULA HOLDS: %s\n", *formula)
		} else {
			fmt.Printf("FORMULA FAILS: %s\n", *formula)
			if cex != "" {
				fmt.Printf("  counterexample: %s\n", cex)
			}
		}
	}

	if *ltlProp != "" {
		holds, cex, err := res.CheckLTL(*ltlProp)
		if err != nil {
			fail("ltl: %v", err)
		}
		if holds {
			fmt.Printf("LTL HOLDS: %s\n", *ltlProp)
		} else {
			fmt.Printf("LTL FAILS: %s\n", *ltlProp)
			if cex != "" {
				fmt.Printf("  lasso counterexample: %s\n", cex)
			}
		}
	}

	if *witness != "" {
		trace, ok, err := res.WitnessFormula(*witness)
		if err != nil {
			fail("witness: %v", err)
		}
		if ok {
			fmt.Printf("WITNESS for %s:\n%s\n", *witness, trace)
		} else {
			fmt.Printf("NO WITNESS: %s is unsatisfiable on this model (or not existential)\n", *witness)
		}
	}

	if res.Incomplete {
		fmt.Println("ANALYSIS INCOMPLETE:")
		for _, d := range res.Diagnostics {
			fmt.Printf("  %s\n", d)
		}
	}

	os.Exit(exitCode(res))
}

// exitCode maps a result to the documented exit codes: incomplete
// analyses take precedence over violations — a partial verdict must
// not be mistaken for a clean or fully-checked run.
func exitCode(res *soteria.Result) int {
	switch {
	case res.Incomplete:
		return 3
	case len(res.Violations) > 0:
		return 1
	}
	return 0
}

// splitIDs parses a comma-separated -properties value, trimming blanks.
func splitIDs(s string) []string {
	var ids []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			ids = append(ids, part)
		}
	}
	return ids
}

func num(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "soteria: "+format+"\n", args...)
	os.Exit(2)
}
