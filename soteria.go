// Package soteria is the public API of the Soteria IoT safety and
// security analyzer, a from-scratch reproduction of "Soteria:
// Automated IoT Safety and Security Analysis" (Celik, McDaniel, Tan —
// USENIX ATC 2018).
//
// Soteria statically validates whether a SmartThings IoT app — or an
// environment of several apps installed together — adheres to a set of
// safety, security, and functional properties. It parses the app's
// Groovy source into an intermediate representation, extracts a finite
// state model (device attributes × values, event/predicate-labeled
// transitions, with property abstraction collapsing numeric
// attributes), and model-checks the model against five general
// properties (S.1–S.5), thirty application-specific properties
// (P.1–P.30), six sensitive-data-flow properties (T.1–T.6, SainT-style
// taint tracking from device/location/user-input sources to
// messaging and network sinks), and any user-supplied CTL formula.
//
// Quick start:
//
//	app, err := soteria.ParseApp("my-app", source)
//	res, err := soteria.Analyze(app)
//	for _, v := range res.Violations {
//	    fmt.Println(v)
//	}
//
// Multi-app environments (paper §4.4) are analyzed with
// AnalyzeEnvironment, which builds the union of the apps' state models
// and reveals interactions invisible in isolation.
package soteria

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"github.com/soteria-analysis/soteria/internal/cluster"
	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/fsio"
	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/properties"
	"github.com/soteria-analysis/soteria/internal/report"
	"github.com/soteria-analysis/soteria/internal/service"
	"github.com/soteria-analysis/soteria/internal/store"
	"github.com/soteria-analysis/soteria/internal/taint"
)

// App is a parsed SmartThings app.
type App struct {
	// Name is the app's name (from its definition block, or the name
	// passed to ParseApp).
	Name string
	ir   *ir.App
}

// ParseApp parses SmartThings Groovy source and extracts the app's
// intermediate representation. Parse errors are returned, but a
// best-effort App is still usable for diagnostics when err != nil and
// app != nil.
func ParseApp(name, source string) (*App, error) {
	app, err := ir.BuildSource(name, source)
	if app == nil {
		return nil, err
	}
	return &App{Name: app.Name, ir: app}, err
}

// IR renders the app's intermediate representation in the paper's
// textual format (permissions block, events/actions block, entry
// points).
func (a *App) IR() string { return ir.Print(a.ir) }

// Devices returns the capability names of the devices the app is
// granted.
func (a *App) Devices() []string { return a.ir.Capabilities() }

// Warnings returns non-fatal extraction diagnostics.
func (a *App) Warnings() []string { return append([]string{}, a.ir.Warnings...) }

// UsesReflection reports whether the app performs call by reflection
// (which Soteria over-approximates and may yield false positives,
// paper §7).
func (a *App) UsesReflection() bool { return a.ir.UsesReflection }

// ViolationKind classifies a violation.
type ViolationKind string

// Violation kinds.
const (
	// GeneralViolation is an S.1–S.5 violation.
	GeneralViolation ViolationKind = "general"
	// AppSpecificViolation is a P.1–P.30 violation.
	AppSpecificViolation ViolationKind = "app-specific"
	// NondeterminismViolation flags a nondeterministic state model.
	NondeterminismViolation ViolationKind = "nondeterminism"
	// TaintViolation is a T.1–T.6 sensitive-data-flow violation.
	TaintViolation ViolationKind = "taint"
)

// Violation is one property violation found by the analysis.
type Violation struct {
	// ID is the property identifier: "S.1".."S.5", "P.1".."P.30",
	// "T.1".."T.6", or "ND" for nondeterminism.
	ID          string
	Kind        ViolationKind
	Description string
	Detail      string
	// Apps names the apps contributing to the violation.
	Apps []string
	// Counterexample is a rendered model trace demonstrating the
	// violation, when one exists.
	Counterexample string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s — %s", v.ID, v.Description, v.Detail)
}

// DiagnosticKind classifies a contained analysis failure.
type DiagnosticKind string

// Diagnostic kinds.
const (
	// DiagnosticPanic marks a recovered internal panic.
	DiagnosticPanic DiagnosticKind = "panic"
	// DiagnosticBudget marks resource-budget exhaustion (timeout,
	// state/node/conflict limit) or context cancellation.
	DiagnosticBudget DiagnosticKind = "budget"
	// DiagnosticError marks an ordinary contained stage error.
	DiagnosticError DiagnosticKind = "error"
)

// Diagnostic describes one contained failure of the analysis pipeline.
// Diagnostics accompany partial results: instead of aborting (or
// crashing) the whole analysis, the failing stage or property is
// skipped and recorded here.
type Diagnostic struct {
	// Stage names the pipeline stage that failed ("statemodel",
	// "properties.general", "engine.explicit", ...).
	Stage string
	// Property is the property ID being checked, when applicable.
	Property string
	// Engine is the model-checking engine involved, when applicable.
	Engine string
	Kind   DiagnosticKind
	// Message is the human-readable failure description.
	Message string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("[%s] %s", d.Kind, d.Stage)
	if d.Property != "" {
		s += " property=" + d.Property
	}
	if d.Engine != "" {
		s += " engine=" + d.Engine
	}
	return s + ": " + d.Message
}

func diagnosticOf(d guard.Diagnostic) Diagnostic {
	return Diagnostic{
		Stage:    d.Stage,
		Property: d.Property,
		Engine:   d.Engine,
		Kind:     DiagnosticKind(d.Kind),
		Message:  d.Message,
	}
}

// Limits bounds an analysis run. The zero value means "unlimited" for
// every resource; see WithLimits.
type Limits struct {
	// Timeout is the wall-clock budget for the whole analysis.
	Timeout time.Duration
	// MaxStates caps state-model enumeration (and LTL product
	// exploration).
	MaxStates int
	// MaxBDDNodes caps BDD allocation in the symbolic engine.
	MaxBDDNodes int
	// MaxSATConflicts caps DPLL conflicts per bounded-model-checking
	// SAT call.
	MaxSATConflicts int
	// MaxFormulaDepth caps the nesting depth accepted by the CTL/LTL
	// parsers (0 = the built-in default of 1000).
	MaxFormulaDepth int
}

func (l Limits) internal() guard.Limits {
	return guard.Limits{
		Timeout:         l.Timeout,
		MaxStates:       l.MaxStates,
		MaxBDDNodes:     l.MaxBDDNodes,
		MaxSATConflicts: l.MaxSATConflicts,
		MaxFormulaDepth: l.MaxFormulaDepth,
	}
}

// Result is a completed (possibly partial) analysis.
type Result struct {
	// Apps names the analyzed apps.
	Apps []string
	// States is the number of states of the (reduced) model; Before is
	// the would-be count without property abstraction.
	States                int
	StatesBeforeReduction int
	// Transitions is the number of labeled transitions.
	Transitions int
	// Violations lists every property violation found.
	Violations []Violation
	// Incomplete is true when part of the analysis was skipped — the
	// resource budget ran out, the context was canceled, or an internal
	// fault was contained. The populated fields are still valid; the
	// Diagnostics explain what was skipped and why.
	Incomplete bool
	// Diagnostics describe each contained failure.
	Diagnostics []Diagnostic
	// Checked lists the app-specific property IDs that were fully
	// decided, in catalogue order.
	Checked []string
	// TaintFlows lists every sensitive-data flow found (each also
	// surfaces as a TaintViolation in Violations), sorted.
	TaintFlows []TaintFlow

	analysis *core.Analysis
}

// TaintFlow is one sensitive-data flow: a source value reaching a
// transmission sink over a feasible path.
type TaintFlow struct {
	// ID is the violated catalogue property, "T.1".."T.6".
	ID  string
	App string
	// Handler and Event identify the subscription handler the flow
	// executes in and the event that triggers it.
	Handler string
	Event   string
	// Source is the sensitive value ("evt.displayName",
	// "location.mode", an input handle); SourceClass classifies it
	// ("device-state", "location-mode", "user-input").
	Source      string
	SourceClass string
	// Via names the persistent state field the value flowed through
	// ("state.lastSeen"); empty for direct flows.
	Via string
	// Sink and Channel identify the transmission; Line is the sink
	// call's source line.
	Sink    string
	Channel string
	Line    int
	// Condition is the path condition under which the sink is reached
	// ("true" when unconditional); it is satisfiable by construction.
	Condition string
	// Witness is the rendered source→sink path, one step per line.
	Witness []string
}

// Option configures an analysis.
type Option func(*core.Options)

// WithGeneralOnly restricts checking to the general properties
// S.1–S.5 (plus nondeterminism).
func WithGeneralOnly() Option {
	return func(o *core.Options) { o.AppSpecific = false; o.Taint = false }
}

// WithAppSpecificOnly restricts checking to the P.1–P.30 catalogue.
func WithAppSpecificOnly() Option {
	return func(o *core.Options) { o.General = false; o.Taint = false }
}

// WithTaintOnly restricts checking to the T.1–T.6 sensitive-data-flow
// family.
func WithTaintOnly() Option {
	return func(o *core.Options) { o.General = false; o.AppSpecific = false }
}

// WithChecks selects exactly which property families run: the general
// S.1–S.5 checks, the app-specific P.1–P.30 catalogue, and the
// T.1–T.6 taint family. It subsumes the *Only options for callers
// that need an arbitrary combination.
func WithChecks(general, appSpecific, taint bool) Option {
	return func(o *core.Options) {
		o.General, o.AppSpecific, o.Taint = general, appSpecific, taint
	}
}

// WithProperties restricts the app-specific and taint catalogues to
// the given IDs (e.g. "P.10", "T.2", or the "T.*" wildcard).
func WithProperties(ids ...string) Option {
	return func(o *core.Options) { o.PropertyIDs = ids }
}

// WithTimeout bounds the analysis wall clock. When the deadline
// passes, the run stops cooperatively and returns a partial Result
// with Incomplete set (it is not an error).
func WithTimeout(d time.Duration) Option {
	return func(o *core.Options) { o.Limits.Timeout = d }
}

// WithLimits bounds the analysis resources. Exhausting any limit
// degrades the run to a partial Result with Incomplete set and a
// Diagnostic naming the exhausted resource.
func WithLimits(l Limits) Option {
	return func(o *core.Options) { o.Limits = l.internal() }
}

// WithParallel checks properties with n concurrent workers (values
// below 2 check sequentially). Parallel and sequential runs produce
// identical results: workers share the Kripke structure read-only,
// each check builds its own engine state, resource limits stay global,
// and the report is merged in catalogue order.
func WithParallel(n int) Option {
	return func(o *core.Options) { o.Parallel = n }
}

// Analyze checks a single app against all properties. It never
// panics: internal faults and budget exhaustion come back as a
// partial Result with Incomplete set.
func Analyze(app *App, opts ...Option) (*Result, error) {
	return AnalyzeEnvironment([]*App{app}, opts...)
}

// AnalyzeContext is Analyze under a context: cancellation and context
// deadlines stop the run cooperatively, yielding a partial Result.
func AnalyzeContext(ctx context.Context, app *App, opts ...Option) (*Result, error) {
	return AnalyzeEnvironmentContext(ctx, []*App{app}, opts...)
}

// AnalyzeEnvironment checks a collection of apps working in concert:
// it builds the union state model (Algorithm 2) and verifies the
// properties on the joint behaviour.
func AnalyzeEnvironment(apps []*App, opts ...Option) (*Result, error) {
	return AnalyzeEnvironmentContext(context.Background(), apps, opts...)
}

// AnalyzeEnvironmentContext is AnalyzeEnvironment under a context. It
// never panics; whatever fails inside the pipeline is contained and
// reported through Result.Incomplete and Result.Diagnostics.
func AnalyzeEnvironmentContext(ctx context.Context, apps []*App, opts ...Option) (res *Result, err error) {
	defer func() {
		// Last-resort boundary: a panic that escapes every inner
		// recovery boundary still becomes a structured partial result.
		var perr error
		guard.RecoverTo(&perr, "soteria")
		if perr != nil {
			res = &Result{Incomplete: true,
				Diagnostics: []Diagnostic{diagnosticOf(guard.Diagnose("soteria", "", "", perr))}}
			err = nil
			for _, a := range apps {
				res.Apps = append(res.Apps, a.Name)
			}
		}
	}()
	o := core.DefaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	irs := make([]*ir.App, len(apps))
	for i, a := range apps {
		irs[i] = a.ir
	}
	an, err := core.AnalyzeAppsContext(ctx, o, irs...)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Name
	}
	return resultFrom(an, names), nil
}

// resultFrom converts a pipeline analysis into a public Result.
func resultFrom(an *core.Analysis, appNames []string) *Result {
	res := &Result{
		Apps:       appNames,
		Incomplete: an.Incomplete,
		Checked:    append([]string{}, an.Checked...),
		analysis:   an,
	}
	if an.Model != nil {
		res.States = len(an.Model.States)
		res.StatesBeforeReduction = an.Model.StatesBeforeReduction
		res.Transitions = len(an.Model.Transitions)
	}
	for _, d := range an.Diagnostics {
		res.Diagnostics = append(res.Diagnostics, diagnosticOf(d))
	}
	for _, v := range an.Violations {
		res.Violations = append(res.Violations, Violation{
			ID:             v.ID,
			Kind:           kindOf(v.Kind),
			Description:    v.Description,
			Detail:         v.Detail,
			Apps:           v.Apps,
			Counterexample: v.Counterexample,
		})
	}
	for _, f := range an.TaintFlows {
		res.TaintFlows = append(res.TaintFlows, TaintFlow{
			ID:          f.ID,
			App:         f.App,
			Handler:     f.Handler,
			Event:       f.Event,
			Source:      f.Source,
			SourceClass: f.SourceClass,
			Via:         f.Via,
			Sink:        f.Sink,
			Channel:     f.Channel,
			Line:        f.Line,
			Condition:   f.Condition,
			Witness:     append([]string{}, f.Witness...),
		})
	}
	return res
}

// BatchItem is one unit of a batch analysis: a single app or a
// multi-app environment, identified by Key in the results.
type BatchItem struct {
	Key  string
	Apps []*App
}

// BatchResult pairs a batch item with its outcome. Exactly one of
// Result and Err is set: hard failures land in Err, while contained
// faults and exhausted budgets come back as a partial Result with
// Incomplete set — the same contract as Analyze, preserved per item.
type BatchResult struct {
	Key    string
	Result *Result
	Err    error
}

// AnalyzeBatch analyzes many apps or environments concurrently with a
// bounded worker pool (parallel caps in-flight analyses; values below
// 2 run sequentially, 0 uses GOMAXPROCS). Results come back in input
// order and are identical to running Analyze on each item in turn: a
// panic or exhausted budget in one item degrades only that item's
// result. Options apply to every item; combine with WithParallel to
// additionally fan out property checks inside each item.
func AnalyzeBatch(ctx context.Context, parallel int, items []BatchItem, opts ...Option) []BatchResult {
	o := core.DefaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	coreItems := make([]core.BatchItem, len(items))
	for i, it := range items {
		irs := make([]*ir.App, len(it.Apps))
		for j, a := range it.Apps {
			irs[j] = a.ir
		}
		coreItems[i] = core.BatchItem{Key: it.Key, Apps: irs}
	}
	results := core.AnalyzeBatch(ctx, core.BatchOptions{Options: o, Parallel: parallel}, coreItems...)
	out := make([]BatchResult, len(results))
	for i, r := range results {
		out[i] = BatchResult{Key: r.Key, Err: r.Err}
		if r.Analysis != nil {
			names := make([]string, len(items[i].Apps))
			for j, a := range items[i].Apps {
				names[j] = a.Name
			}
			out[i].Result = resultFrom(r.Analysis, names)
		}
	}
	return out
}

func kindOf(k properties.Kind) ViolationKind {
	switch k {
	case properties.General:
		return GeneralViolation
	case properties.AppSpecific:
		return AppSpecificViolation
	case properties.Nondeterminism:
		return NondeterminismViolation
	case properties.Taint:
		return TaintViolation
	}
	return ViolationKind("unknown")
}

// errIncomplete reports a post-hoc query against a result with no
// model (analysis degraded before model construction finished).
func (r *Result) errIncomplete() error {
	return fmt.Errorf("soteria: analysis is incomplete, no model available")
}

// DOT renders the extracted state model as a Graphviz digraph (the
// paper's Fig. 9 visualisation). "" when the result has no model.
func (r *Result) DOT() string {
	if r.analysis == nil {
		return ""
	}
	return r.analysis.DOT()
}

// SMV renders the model in NuSMV input format with the applicable
// property formulas as SPEC lines. "" when the result has no model.
func (r *Result) SMV() string {
	if r.analysis == nil {
		return ""
	}
	return r.analysis.SMV()
}

// CheckFormula verifies a custom CTL property against the model.
// Atomic propositions are "capability.attribute=value" state facts
// (e.g. "valve.valve=closed") and "ev:<event>" markers for states
// entered via an event (e.g. "ev:waterSensor.water.wet"). It returns
// whether the property holds and, when it does not, a counterexample
// trace. Malformed formulas (syntax errors, excessive nesting) are
// reported as errors — CheckFormula never panics.
func (r *Result) CheckFormula(formula string) (holds bool, counterexample string, err error) {
	if r.analysis == nil {
		return false, "", r.errIncomplete()
	}
	return r.analysis.CheckFormula(formula)
}

// Engine selects the model-checking backend for CheckFormulaEngine.
type Engine = core.Engine

// Available engines: the explicit-state fixpoint checker (default,
// produces counterexamples), the BDD-based symbolic engine, and
// SAT-based bounded model checking — the reproduction's analogue of
// NuSMV's combined BDD/SAT configuration (paper §5).
const (
	Explicit = core.Explicit
	BDD      = core.BDD
	BMC      = core.BMC
)

// CheckFormulaEngine verifies a custom CTL property with a specific
// backend. The BMC engine handles only AG formulas with propositional
// bodies (it returns an error otherwise).
func (r *Result) CheckFormulaEngine(formula string, engine Engine) (holds bool, counterexample string, err error) {
	if r.analysis == nil {
		return false, "", r.errIncomplete()
	}
	return r.analysis.CheckFormulaEngine(formula, engine)
}

// CheckLTL verifies a linear temporal logic property over all paths of
// the model (syntax: G, F, X, U, R, !, &, |, ->; propositions as in
// CheckFormula). A failing property yields a lasso counterexample —
// a stem followed by an infinitely repeating loop. Malformed formulas
// are reported as errors — CheckLTL never panics.
func (r *Result) CheckLTL(formula string) (holds bool, counterexample string, err error) {
	if r.analysis == nil {
		return false, "", r.errIncomplete()
	}
	return r.analysis.CheckLTL(formula)
}

// WitnessFormula produces a trace demonstrating an existential CTL
// formula (EX/EF/EU/EG) — evidence for questions like "can the door
// ever be unlocked while nobody is home?". ok=false when the formula
// is unsatisfiable on the model or is not existential.
func (r *Result) WitnessFormula(formula string) (trace string, ok bool, err error) {
	if r.analysis == nil {
		return "", false, r.errIncomplete()
	}
	return r.analysis.WitnessFormula(formula)
}

// Violated reports whether the given property ID was violated.
func (r *Result) Violated(id string) bool {
	for _, v := range r.Violations {
		if v.ID == id {
			return true
		}
	}
	return false
}

// JSON renders the result as the schema-versioned canonical record —
// the same encoding soteriad stores and serves (deterministic: equal
// results encode to equal bytes; `"schema": 2`).
func (r *Result) JSON() ([]byte, error) {
	if r.analysis != nil {
		return report.Encode(report.FromAnalysis(r.analysis))
	}
	// A result without a pipeline analysis (last-resort recovery path)
	// still renders from its public fields.
	rec := &report.Record{
		Schema:      report.Schema,
		Apps:        append([]string{}, r.Apps...),
		Violations:  []report.Violation{},
		Checked:     append([]string{}, r.Checked...),
		Incomplete:  r.Incomplete,
		Diagnostics: []report.Diagnostic{},
	}
	for _, d := range r.Diagnostics {
		rec.Diagnostics = append(rec.Diagnostics, report.Diagnostic{
			Stage: d.Stage, Property: d.Property, Engine: d.Engine,
			Kind: string(d.Kind), Message: d.Message,
		})
	}
	return report.Encode(rec)
}

// Service is a running analysis service: the soteriad serving tier —
// HTTP JSON API, bounded job queue, persistent content-addressed
// result store — embeddable in any program. Mount Handler() on an
// http.Server and call Shutdown to drain.
type Service = service.Server

// ServiceConfig configures NewService. The zero value is serviceable:
// sensible defaults fill in workers, queue depth, timeouts, and size
// caps; an empty StoreDir disables cross-restart persistence.
type ServiceConfig struct {
	// Workers is the number of concurrent analysis workers
	// (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued jobs; past it, submissions are rejected
	// with HTTP 429 and a Retry-After hint (0 = 64).
	QueueDepth int
	// JobTimeout is the per-job wall-clock ceiling; requests may ask
	// for less, never more (0 = 60s).
	JobTimeout time.Duration
	// MaxBodyBytes caps request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// Parallel is the per-analysis property-check worker count (0 = 1).
	Parallel int
	// Limits are per-job resource limits; the zero value is unlimited.
	Limits Limits
	// StoreDir roots the persistent result store; "" keeps memoization
	// in-process only.
	StoreDir string
	// JournalPath enables the durable job journal ("" disables): every
	// accepted job is fsynced into it before its acknowledgment, and on
	// restart incomplete jobs re-enqueue under their original IDs while
	// idempotency keys dedupe resubmissions.
	JournalPath string
	// ChaosFS slows and fragments store and journal writes (small
	// chunks, delays) to widen crash windows. For kill-restart testing
	// only — never in production.
	ChaosFS bool
	// Logger receives structured service logs; nil discards them. Every
	// line about a job carries its trace ID.
	Logger *slog.Logger
	// SlowJobThreshold, when positive, logs the full span tree of any
	// job whose wall time meets or exceeds it (0 disables).
	SlowJobThreshold time.Duration

	// Peers, when set, joins this node to a sharded fleet: the full
	// static member list (this node's advertised URL included). Each
	// analysis key is owned by one member of a consistent-hash ring;
	// sync requests route to their owner and federate back, and the
	// result store reads/writes through the owning replica. Every node
	// must be started with the same list (order is irrelevant).
	Peers []string
	// SelfURL is this node's advertised base URL (required with Peers;
	// must appear in the list).
	SelfURL string
	// VirtualNodes is the ring's per-member point count (0 = 128).
	VirtualNodes int
}

// NewService starts an analysis service (its worker pool is live on
// return). Every analysis runs inside the resilience layer: resource
// budgets, cooperative cancellation, and panic isolation per job.
func NewService(cfg ServiceConfig) (*Service, error) {
	var fs fsio.FS
	if cfg.ChaosFS {
		fs = fsio.Chaos{Inner: fsio.OS{}}
	}
	var st *store.Store
	if cfg.StoreDir != "" {
		var err error
		st, err = store.Open(cfg.StoreDir, store.Options{FS: fs})
		if err != nil {
			return nil, err
		}
	}
	var cl *cluster.Cluster
	if len(cfg.Peers) > 0 {
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:         cfg.SelfURL,
			Peers:        cfg.Peers,
			VirtualNodes: cfg.VirtualNodes,
		})
		if err != nil {
			return nil, err
		}
	}
	return service.New(service.Config{
		Workers:          cfg.Workers,
		QueueDepth:       cfg.QueueDepth,
		JobTimeout:       cfg.JobTimeout,
		MaxBodyBytes:     cfg.MaxBodyBytes,
		Parallel:         cfg.Parallel,
		Limits:           cfg.Limits.internal(),
		Store:            st,
		Cluster:          cl,
		JournalPath:      cfg.JournalPath,
		FS:               fs,
		Logger:           cfg.Logger,
		SlowJobThreshold: cfg.SlowJobThreshold,
	})
}

// PropertyIDs returns the full app-specific and taint catalogue IDs
// with descriptions, for discovery and documentation tooling.
func PropertyIDs() map[string]string {
	out := map[string]string{}
	for _, p := range properties.Catalogue() {
		out[p.ID] = p.Description
	}
	for _, s := range taint.Catalogue() {
		out[s.ID] = s.Description
	}
	return out
}
