module github.com/soteria-analysis/soteria

go 1.22
