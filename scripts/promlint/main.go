// Command promlint scrapes a Prometheus text exposition over HTTP and
// validates it with the same checker the unit tests use
// (obs.ValidateExposition): every family announces HELP and TYPE
// exactly once before its samples, no sample is duplicated, counters
// end in _total, and histograms are cumulative with a +Inf bucket and
// consistent _sum/_count. The smoke script runs it against a live
// soteriad so a drifting /metrics renderer fails CI, not a dashboard.
//
//	promlint -url http://127.0.0.1:8380/metrics \
//	    -require soteriad_job_seconds,soteriad_memo_lookups_total
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"github.com/soteria-analysis/soteria/internal/obs"
)

func main() {
	url := flag.String("url", "", "metrics endpoint to scrape (required)")
	require := flag.String("require", "", "comma-separated metric families that must be present")
	flag.Parse()
	if *url == "" {
		fmt.Fprintln(os.Stderr, "promlint: -url required")
		os.Exit(2)
	}

	resp, err := http.Get(*url)
	if err != nil {
		fail("GET %s: %v", *url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("GET %s: %d", *url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("reading %s: %v", *url, err)
	}

	if err := obs.ValidateExposition(data); err != nil {
		fail("invalid exposition: %v", err)
	}

	text := string(data)
	missing := 0
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !strings.Contains(text, "# TYPE "+name+" ") {
			fmt.Fprintf(os.Stderr, "promlint: required family %q missing\n", name)
			missing++
		}
	}
	if missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("promlint: %s ok (%d families)\n", *url, strings.Count(text, "# TYPE "))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promlint: "+format+"\n", args...)
	os.Exit(1)
}
