#!/usr/bin/env bash
# cluster-bench.sh — record BENCH_cluster.json: the same market-corpus
# load swept over a 1-node daemon and a 3-node fleet, so the artifact
# answers "what does sharding buy (and cost) on this host?".
#
# Usage: scripts/cluster-bench.sh [OUT.json]
#
# Boots the daemons itself on loopback ports, runs cmd/soteria-load at
# three closed-loop concurrency levels per fleet, and merges the two
# runs with soteria-load -merge. No external dependencies beyond the
# repo's own binaries.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_cluster.json}"
LEVELS="${LEVELS:-1,4,16}"
REQUESTS="${REQUESTS:-195}"
WORKDIR="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== building binaries" >&2
go build -o "$WORKDIR/soteriad" ./cmd/soteriad
go build -o "$WORKDIR/soteria-load" ./cmd/soteria-load

# pick_port: choose a high loopback port not currently listening.
pick_port() {
  local port
  for _ in $(seq 1 50); do
    port=$((20000 + RANDOM % 20000))
    if ! (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
      echo "$port"
      return 0
    fi
    exec 3>&- 2>/dev/null || true
  done
  echo "could not find a free port" >&2
  exit 1
}

# start_daemon NAME ADDR [EXTRA_FLAGS...]: boot one soteriad and wait
# for /healthz.
start_daemon() {
  local name=$1 addr=$2; shift 2
  "$WORKDIR/soteriad" -addr "$addr" \
    -store "$WORKDIR/$name-store" -journal "$WORKDIR/$name.wal" \
    -workers 2 -queue 128 "$@" >"$WORKDIR/$name.log" 2>&1 &
  PIDS+=($!)
  for _ in $(seq 1 200); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.05
  done
  echo "daemon $name never became healthy:" >&2
  cat "$WORKDIR/$name.log" >&2
  exit 1
}

echo "== 1-node run" >&2
P0=$(pick_port)
start_daemon single "127.0.0.1:$P0"
"$WORKDIR/soteria-load" -targets "http://127.0.0.1:$P0" \
  -label 1-node -levels "$LEVELS" -requests "$REQUESTS" \
  -out "$WORKDIR/bench-1node.json"
kill "${PIDS[@]}" 2>/dev/null || true
wait 2>/dev/null || true
PIDS=()

echo "== 3-node fleet run" >&2
P1=$(pick_port); P2=$(pick_port); P3=$(pick_port)
PEERS="http://127.0.0.1:$P1,http://127.0.0.1:$P2,http://127.0.0.1:$P3"
start_daemon node1 "127.0.0.1:$P1" -node "http://127.0.0.1:$P1" -peers "$PEERS"
start_daemon node2 "127.0.0.1:$P2" -node "http://127.0.0.1:$P2" -peers "$PEERS"
start_daemon node3 "127.0.0.1:$P3" -node "http://127.0.0.1:$P3" -peers "$PEERS"
"$WORKDIR/soteria-load" -targets "$PEERS" \
  -label 3-node -levels "$LEVELS" -requests "$REQUESTS" \
  -out "$WORKDIR/bench-3node.json"

echo "== merging → $OUT" >&2
"$WORKDIR/soteria-load" \
  -merge "1-node=$WORKDIR/bench-1node.json,3-node=$WORKDIR/bench-3node.json" \
  -out "$OUT"
echo "wrote $OUT" >&2
