// Command smokereq prints a POST /v1/analyze request body for the
// paper's Smoke-Alarm app. The CI smoke script feeds it to a running
// soteriad to check the serve-and-cache path end to end.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/soteria-analysis/soteria/internal/paperapps"
)

func main() {
	body, err := json.Marshal(map[string]string{
		"name":   "smoke-alarm",
		"source": paperapps.SmokeAlarm,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(body)
}
