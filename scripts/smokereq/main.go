// Command smokereq prints request bodies for soteriad's analyze and
// batch endpoints, built around the paper's Smoke-Alarm app. The CI
// smoke script feeds them to a running soteriad to check the
// serve-and-cache, backpressure, and restart-resume paths end to end.
//
//	smokereq                 analyze body for the Smoke-Alarm app
//	smokereq -variant 3      same app under a distinct content address
//	smokereq -async          ask for 202 + poll instead of waiting
//	smokereq -idem KEY       attach an idempotency key
//	smokereq -batch 20       batch body with 20 distinct variant items
//	                         (a slow job: items run sequentially)
//	smokereq -timings        ask for the span tree in the response
//	smokereq -groovy         print the raw Groovy source instead of a
//	                         request body (for soteria -explain-timing)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/soteria-analysis/soteria/internal/paperapps"
)

// variantSource derives a distinct content address per variant: the
// leading comment changes the hashed bytes, not the analysis.
func variantSource(n int) string {
	if n == 0 {
		return paperapps.SmokeAlarm
	}
	return fmt.Sprintf("// smoke variant %d\n%s", n, paperapps.SmokeAlarm)
}

func main() {
	var (
		batch   = flag.Int("batch", 0, "emit a /v1/batch body with this many variant items (0 = single analyze)")
		variant = flag.Int("variant", 0, "offset the content address so the request cannot hit the store")
		async   = flag.Bool("async", false, "request async submission (202 + poll URL)")
		idem    = flag.String("idem", "", "idempotency key to attach")
		timings = flag.Bool("timings", false, "request the span tree in the response records")
		groovy  = flag.Bool("groovy", false, "print the raw Groovy source instead of a request body")
	)
	flag.Parse()

	if *groovy {
		fmt.Print(variantSource(*variant))
		return
	}

	body := map[string]any{}
	if *batch > 0 {
		items := make([]map[string]any, *batch)
		for i := range items {
			items[i] = map[string]any{
				"key":  fmt.Sprintf("item-%d", i),
				"apps": []map[string]string{{"name": fmt.Sprintf("smoke-alarm-%d", i), "source": variantSource(*variant + i)}},
			}
		}
		body["items"] = items
	} else {
		body["name"] = "smoke-alarm"
		body["source"] = variantSource(*variant)
	}
	if *async {
		body["async"] = true
	}
	if *idem != "" {
		body["idempotency_key"] = *idem
	}
	if *timings {
		body["timings"] = true
	}

	data, err := json.Marshal(body)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
}
