#!/usr/bin/env bash
# Coverage gate: fail when total statement coverage drops below the
# floor. Coverage is counted cross-package (-coverpkg=./...): a
# statement is covered when ANY package's tests execute it, so the
# root integration tests get credit for the internals they drive.
# The floor trails the measured baseline (80.6% at the time the taint
# family landed) by a sliver; ratchet it up when coverage grows.
set -euo pipefail

FLOOR="${COVERAGE_FLOOR:-80.0}"
PROFILE="${1:-coverage.out}"

go test -coverprofile="$PROFILE" -coverpkg=./... ./...
TOTAL=$(go tool cover -func="$PROFILE" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')

echo "total coverage: ${TOTAL}% (floor: ${FLOOR}%)"
awk -v t="$TOTAL" -v f="$FLOOR" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || {
    echo "coverage ${TOTAL}% is below the ${FLOOR}% floor" >&2
    exit 1
}
