#!/usr/bin/env bash
# Coverage gate: fail when total statement coverage drops below the
# floor. The floor trails the measured baseline (79.3% at the time the
# conformance subsystem landed) by a little over a point to absorb
# counting noise; ratchet it up when coverage grows.
set -euo pipefail

FLOOR="${COVERAGE_FLOOR:-78.0}"
PROFILE="${1:-coverage.out}"

go test -coverprofile="$PROFILE" ./...
TOTAL=$(go tool cover -func="$PROFILE" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')

echo "total coverage: ${TOTAL}% (floor: ${FLOOR}%)"
awk -v t="$TOTAL" -v f="$FLOOR" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || {
    echo "coverage ${TOTAL}% is below the ${FLOOR}% floor" >&2
    exit 1
}
