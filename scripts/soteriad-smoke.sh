#!/usr/bin/env bash
# CI smoke test for the soteriad daemon: build it, start it with a
# persistent store, analyze a paper app over HTTP, assert the repeated
# request is served from the store, and check SIGTERM drains cleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:8391
base="http://$addr"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/soteriad" ./cmd/soteriad
go run ./scripts/smokereq > "$workdir/req.json"

"$workdir/soteriad" -addr "$addr" -store "$workdir/store" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

for _ in $(seq 1 50); do
    curl -fsS "$base/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fsS "$base/healthz" >/dev/null

first=$(curl -fsS -X POST --data-binary @"$workdir/req.json" "$base/v1/analyze")
echo "$first" | grep -q '"schema":1' || { echo "no schema-1 record in: $first"; exit 1; }
if echo "$first" | grep -q '"cached":true'; then
    echo "first request unexpectedly cached: $first"; exit 1
fi

second=$(curl -fsS -X POST --data-binary @"$workdir/req.json" "$base/v1/analyze")
echo "$second" | grep -q '"cached":true' || { echo "repeat not served from store: $second"; exit 1; }

curl -fsS "$base/metrics" | grep -Eq 'soteriad_store_hits_total [1-9]' \
    || { echo "store hit counter did not increment"; exit 1; }

kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [ "$status" -ne 0 ]; then
    echo "soteriad exited $status on SIGTERM"; exit 1
fi
trap 'rm -rf "$workdir"' EXIT
echo "soteriad smoke OK"
