#!/usr/bin/env bash
# CI smoke test for the soteriad daemon, in five phases:
#   1. serve-and-cache: analyze a paper app over HTTP, assert the
#      repeated request is served from the store, SIGTERM drains cleanly;
#   2. backpressure: with a 1-worker/1-deep queue, overflow submissions
#      are rejected 429 with a Retry-After hint;
#   3. restart-resume: a journaled job survives SIGTERM + restart under
#      its original ID, reaches a terminal state, and an idempotent
#      resubmission is answered by that same job;
#   4. observability: against a live daemon, /metrics passes the
#      exposition validator with the telemetry families present, a
#      timings request returns a span tree + X-Soteria-Trace header,
#      the trace ID appears in the daemon's log, the slow-job span dump
#      fires, pprof answers on its own listener, and soteria
#      -explain-timing prints a local span tree;
#   5. fleet: three daemons formed with -peers report 3 ring members,
#      and an analysis submitted to node 1 is answered from the shared
#      sharded store (cached:true) when resubmitted to node 2.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:8391
base="http://$addr"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/soteriad" ./cmd/soteriad
go run ./scripts/smokereq > "$workdir/req.json"

"$workdir/soteriad" -addr "$addr" -store "$workdir/store" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

for _ in $(seq 1 50); do
    curl -fsS "$base/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fsS "$base/healthz" >/dev/null

first=$(curl -fsS -X POST --data-binary @"$workdir/req.json" "$base/v1/analyze")
echo "$first" | grep -q '"schema":1' || { echo "no schema-1 record in: $first"; exit 1; }
if echo "$first" | grep -q '"cached":true'; then
    echo "first request unexpectedly cached: $first"; exit 1
fi

second=$(curl -fsS -X POST --data-binary @"$workdir/req.json" "$base/v1/analyze")
echo "$second" | grep -q '"cached":true' || { echo "repeat not served from store: $second"; exit 1; }

# Buffered: grep -q quitting mid-stream would break curl's pipe and
# fail the pipeline under pipefail even on a successful match.
metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep -Eq 'soteriad_store_hits_total [1-9]' \
    || { echo "store hit counter did not increment"; exit 1; }

kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [ "$status" -ne 0 ]; then
    echo "soteriad exited $status on SIGTERM"; exit 1
fi
trap 'rm -rf "$workdir"' EXIT
echo "phase 1 OK: serve-and-cache + clean drain"

json_field() { # json_field NAME — extract a string field from stdin
    grep -o "\"$1\":\"[^\"]*\"" | head -1 | cut -d'"' -f4
}

wait_healthy() { # wait_healthy BASE
    for _ in $(seq 1 50); do
        curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    curl -fsS "$1/healthz" >/dev/null
}

# --- Phase 2: 429 + Retry-After under backpressure -------------------
# One worker, one queue slot, chaos-slowed writes. A 60-item batch
# occupies the worker for hundreds of milliseconds (each record write
# is chaos-delayed), while twelve concurrent single submissions drain
# one at a time through the journal's write lock into the full queue:
# the first takes the only slot, the rest must be turned away with 429
# and a Retry-After hint.
addr2=127.0.0.1:8392
base2="http://$addr2"
go run ./scripts/smokereq -batch 60 -variant 100 -async > "$workdir/slow-a.json"
for i in $(seq 1 12); do
    go run ./scripts/smokereq -variant "$((200 + i))" -async > "$workdir/burst-$i.json"
done

SOTERIAD_CHAOS_FS=1 "$workdir/soteriad" -addr "$addr2" \
    -store "$workdir/store2" -journal "$workdir/journal2.wal" \
    -workers 1 -queue 1 &
pid=$!
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
wait_healthy "$base2"

curl -fsS -X POST --data-binary @"$workdir/slow-a.json" "$base2/v1/batch" >/dev/null
for i in $(seq 1 12); do
    curl -sS -o "$workdir/burst-$i.out" -D "$workdir/burst-$i.hdr" -w '%{http_code}' \
        -X POST --data-binary @"$workdir/burst-$i.json" "$base2/v1/analyze" \
        > "$workdir/burst-$i.code" &
done
wait $(jobs -p | grep -v "^$pid\$") 2>/dev/null || true

rejected=0
for i in $(seq 1 12); do
    if [ "$(cat "$workdir/burst-$i.code")" = "429" ]; then
        rejected=$((rejected + 1))
        grep -qi '^retry-after: [0-9]' "$workdir/burst-$i.hdr" \
            || { echo "429 without Retry-After header:"; cat "$workdir/burst-$i.hdr"; exit 1; }
    fi
done
if [ "$rejected" -eq 0 ]; then
    echo "no burst submission was rejected 429:"; cat "$workdir"/burst-*.code; echo; exit 1
fi
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
echo "phase 2 OK: $rejected/12 overflow submissions rejected 429 + Retry-After"

# --- Phase 3: restart-resume round trip ------------------------------
# Submit a journaled async job, SIGTERM the daemon, restart it over the
# same store + journal: the job must still answer under its original ID
# and reach a terminal state, and a resubmission with the same
# idempotency key must be answered by that very job.
addr3=127.0.0.1:8393
base3="http://$addr3"
go run ./scripts/smokereq -variant 400 -async -idem smoke-resume > "$workdir/resume.json"

"$workdir/soteriad" -addr "$addr3" \
    -store "$workdir/store3" -journal "$workdir/journal3.wal" -workers 1 &
pid=$!
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
wait_healthy "$base3"

jobid=$(curl -fsS -X POST --data-binary @"$workdir/resume.json" "$base3/v1/analyze" | json_field job_id)
[ -n "$jobid" ] || { echo "no job_id in submission response"; exit 1; }
kill -TERM "$pid"
wait "$pid" || { echo "soteriad exited non-zero on SIGTERM"; exit 1; }

"$workdir/soteriad" -addr "$addr3" \
    -store "$workdir/store3" -journal "$workdir/journal3.wal" -workers 1 &
pid=$!
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
wait_healthy "$base3"

terminal=""
for _ in $(seq 1 100); do
    poll=$(curl -fsS "$base3/v1/jobs/$jobid") \
        || { echo "job $jobid lost across restart"; exit 1; }
    if echo "$poll" | grep -Eq '"status":"(done|failed)"'; then
        terminal=$(echo "$poll" | json_field status); break
    fi
    sleep 0.2
done
[ "$terminal" = "done" ] || { echo "job $jobid did not finish after restart: ${terminal:-never terminal}"; exit 1; }

resubmit=$(curl -fsS -X POST --data-binary @"$workdir/resume.json" "$base3/v1/analyze")
dupid=$(echo "$resubmit" | json_field job_id)
if [ "$dupid" != "$jobid" ]; then
    echo "idempotent resubmission ran as new job $dupid, want $jobid"; exit 1
fi

kill -TERM "$pid"
wait "$pid" || { echo "soteriad exited non-zero on final SIGTERM"; exit 1; }
trap 'rm -rf "$workdir"' EXIT
echo "phase 3 OK: restart-resume + idempotent resubmission"

# --- Phase 4: observability ------------------------------------------
addr4=127.0.0.1:8394
base4="http://$addr4"
pprof_addr=127.0.0.1:8395
go run ./scripts/smokereq -variant 500 -timings > "$workdir/timed.json"

"$workdir/soteriad" -addr "$addr4" -store "$workdir/store4" \
    -pprof "$pprof_addr" -slow-job 1ms 2> "$workdir/d4.log" &
pid=$!
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
wait_healthy "$base4"

# A timings submission returns the span tree and the trace header.
curl -fsS -D "$workdir/timed.hdr" -X POST --data-binary @"$workdir/timed.json" \
    "$base4/v1/analyze" > "$workdir/timed.out"
grep -qi '^x-soteria-trace: ' "$workdir/timed.hdr" \
    || { echo "no X-Soteria-Trace response header:"; cat "$workdir/timed.hdr"; exit 1; }
grep -q '"timing":{"trace_id":' "$workdir/timed.out" \
    || { echo "no span tree in timings response: $(cat "$workdir/timed.out")"; exit 1; }
trace=$(grep -i '^x-soteria-trace: ' "$workdir/timed.hdr" | head -1 | cut -d' ' -f2 | tr -d '\r')
grep -q "trace=$trace" "$workdir/d4.log" \
    || { echo "trace $trace absent from daemon log:"; cat "$workdir/d4.log"; exit 1; }
grep -q 'slow job' "$workdir/d4.log" \
    || { echo "slow-job span dump did not fire (threshold 1ms):"; cat "$workdir/d4.log"; exit 1; }

# The exposition validator passes with every telemetry family present.
go run ./scripts/promlint -url "$base4/metrics" -require \
    soteriad_job_seconds,soteriad_queue_wait_seconds,soteriad_phase_seconds,soteriad_engine_check_seconds,soteriad_bdd_ite_lookups_total,soteriad_memo_lookups_total,soteriad_jobs_replayed_total,soteriad_slow_jobs_total

# pprof answers on its own listener, not the API address.
curl -fsS "http://$pprof_addr/debug/pprof/" | grep -q goroutine \
    || { echo "pprof listener not serving"; exit 1; }
if curl -fsS "$base4/debug/pprof/" >/dev/null 2>&1; then
    echo "pprof unexpectedly reachable through the API listener"; exit 1
fi

kill -TERM "$pid"
wait "$pid" || { echo "soteriad exited non-zero on SIGTERM"; exit 1; }
trap 'rm -rf "$workdir"' EXIT

# soteria -explain-timing prints the local span tree.
go run ./scripts/smokereq -groovy > "$workdir/smoke.groovy"
go run ./cmd/soteria -explain-timing "$workdir/smoke.groovy" 2> "$workdir/timing.err" > /dev/null
grep -q 'statemodel' "$workdir/timing.err" \
    || { echo "-explain-timing printed no span tree:"; cat "$workdir/timing.err"; exit 1; }
echo "phase 4 OK: metrics exposition + tracing + slow-job + pprof + explain-timing"

# --- Phase 5: multi-node fleet ---------------------------------------
# Three daemons share one static -peers list. Any node answers any key:
# a result produced via node 1 lives on its ring owner's shard, so the
# same submission against node 2 must come back cached, and every node
# must report the full membership.
fa=127.0.0.1:8396; fb=127.0.0.1:8397; fc=127.0.0.1:8398
peers="http://$fa,http://$fb,http://$fc"
go run ./scripts/smokereq -variant 600 > "$workdir/fleet.json"

fpids=()
for a in "$fa" "$fb" "$fc"; do
    "$workdir/soteriad" -addr "$a" -node "http://$a" -peers "$peers" \
        -store "$workdir/store-$a" -journal "$workdir/journal-$a.wal" \
        -workers 1 2> "$workdir/fleet-$a.log" &
    fpids+=($!)
done
trap 'kill -9 "${fpids[@]}" 2>/dev/null || true; rm -rf "$workdir"' EXIT
for a in "$fa" "$fb" "$fc"; do
    wait_healthy "http://$a"
done

for a in "$fa" "$fb" "$fc"; do
    curl -fsS "http://$a/v1/cluster/status" | grep -q '"members":3' \
        || { echo "node $a does not see 3 fleet members"; exit 1; }
done

via1=$(curl -fsS -X POST --data-binary @"$workdir/fleet.json" "http://$fa/v1/analyze")
echo "$via1" | grep -q '"schema":1' || { echo "fleet analysis failed: $via1"; exit 1; }

via2=$(curl -fsS -X POST --data-binary @"$workdir/fleet.json" "http://$fb/v1/analyze")
echo "$via2" | grep -q '"cached":true' \
    || { echo "cross-node resubmission not served from the sharded store: $via2"; exit 1; }

for p in "${fpids[@]}"; do kill -TERM "$p" 2>/dev/null || true; done
for p in "${fpids[@]}"; do
    wait "$p" || { echo "fleet daemon exited non-zero on SIGTERM"; exit 1; }
done
trap 'rm -rf "$workdir"' EXIT
echo "phase 5 OK: 3-member fleet + cross-node cache hit"
echo "soteriad smoke OK"
