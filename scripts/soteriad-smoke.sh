#!/usr/bin/env bash
# CI smoke test for the soteriad daemon, in three phases:
#   1. serve-and-cache: analyze a paper app over HTTP, assert the
#      repeated request is served from the store, SIGTERM drains cleanly;
#   2. backpressure: with a 1-worker/1-deep queue, overflow submissions
#      are rejected 429 with a Retry-After hint;
#   3. restart-resume: a journaled job survives SIGTERM + restart under
#      its original ID, reaches a terminal state, and an idempotent
#      resubmission is answered by that same job.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:8391
base="http://$addr"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/soteriad" ./cmd/soteriad
go run ./scripts/smokereq > "$workdir/req.json"

"$workdir/soteriad" -addr "$addr" -store "$workdir/store" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

for _ in $(seq 1 50); do
    curl -fsS "$base/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fsS "$base/healthz" >/dev/null

first=$(curl -fsS -X POST --data-binary @"$workdir/req.json" "$base/v1/analyze")
echo "$first" | grep -q '"schema":1' || { echo "no schema-1 record in: $first"; exit 1; }
if echo "$first" | grep -q '"cached":true'; then
    echo "first request unexpectedly cached: $first"; exit 1
fi

second=$(curl -fsS -X POST --data-binary @"$workdir/req.json" "$base/v1/analyze")
echo "$second" | grep -q '"cached":true' || { echo "repeat not served from store: $second"; exit 1; }

curl -fsS "$base/metrics" | grep -Eq 'soteriad_store_hits_total [1-9]' \
    || { echo "store hit counter did not increment"; exit 1; }

kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [ "$status" -ne 0 ]; then
    echo "soteriad exited $status on SIGTERM"; exit 1
fi
trap 'rm -rf "$workdir"' EXIT
echo "phase 1 OK: serve-and-cache + clean drain"

json_field() { # json_field NAME — extract a string field from stdin
    grep -o "\"$1\":\"[^\"]*\"" | head -1 | cut -d'"' -f4
}

wait_healthy() { # wait_healthy BASE
    for _ in $(seq 1 50); do
        curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    curl -fsS "$1/healthz" >/dev/null
}

# --- Phase 2: 429 + Retry-After under backpressure -------------------
# One worker, one queue slot, chaos-slowed writes. A 60-item batch
# occupies the worker for hundreds of milliseconds (each record write
# is chaos-delayed), while twelve concurrent single submissions drain
# one at a time through the journal's write lock into the full queue:
# the first takes the only slot, the rest must be turned away with 429
# and a Retry-After hint.
addr2=127.0.0.1:8392
base2="http://$addr2"
go run ./scripts/smokereq -batch 60 -variant 100 -async > "$workdir/slow-a.json"
for i in $(seq 1 12); do
    go run ./scripts/smokereq -variant "$((200 + i))" -async > "$workdir/burst-$i.json"
done

SOTERIAD_CHAOS_FS=1 "$workdir/soteriad" -addr "$addr2" \
    -store "$workdir/store2" -journal "$workdir/journal2.wal" \
    -workers 1 -queue 1 &
pid=$!
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
wait_healthy "$base2"

curl -fsS -X POST --data-binary @"$workdir/slow-a.json" "$base2/v1/batch" >/dev/null
for i in $(seq 1 12); do
    curl -sS -o "$workdir/burst-$i.out" -D "$workdir/burst-$i.hdr" -w '%{http_code}' \
        -X POST --data-binary @"$workdir/burst-$i.json" "$base2/v1/analyze" \
        > "$workdir/burst-$i.code" &
done
wait $(jobs -p | grep -v "^$pid\$") 2>/dev/null || true

rejected=0
for i in $(seq 1 12); do
    if [ "$(cat "$workdir/burst-$i.code")" = "429" ]; then
        rejected=$((rejected + 1))
        grep -qi '^retry-after: [0-9]' "$workdir/burst-$i.hdr" \
            || { echo "429 without Retry-After header:"; cat "$workdir/burst-$i.hdr"; exit 1; }
    fi
done
if [ "$rejected" -eq 0 ]; then
    echo "no burst submission was rejected 429:"; cat "$workdir"/burst-*.code; echo; exit 1
fi
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
echo "phase 2 OK: $rejected/12 overflow submissions rejected 429 + Retry-After"

# --- Phase 3: restart-resume round trip ------------------------------
# Submit a journaled async job, SIGTERM the daemon, restart it over the
# same store + journal: the job must still answer under its original ID
# and reach a terminal state, and a resubmission with the same
# idempotency key must be answered by that very job.
addr3=127.0.0.1:8393
base3="http://$addr3"
go run ./scripts/smokereq -variant 400 -async -idem smoke-resume > "$workdir/resume.json"

"$workdir/soteriad" -addr "$addr3" \
    -store "$workdir/store3" -journal "$workdir/journal3.wal" -workers 1 &
pid=$!
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
wait_healthy "$base3"

jobid=$(curl -fsS -X POST --data-binary @"$workdir/resume.json" "$base3/v1/analyze" | json_field job_id)
[ -n "$jobid" ] || { echo "no job_id in submission response"; exit 1; }
kill -TERM "$pid"
wait "$pid" || { echo "soteriad exited non-zero on SIGTERM"; exit 1; }

"$workdir/soteriad" -addr "$addr3" \
    -store "$workdir/store3" -journal "$workdir/journal3.wal" -workers 1 &
pid=$!
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
wait_healthy "$base3"

terminal=""
for _ in $(seq 1 100); do
    poll=$(curl -fsS "$base3/v1/jobs/$jobid") \
        || { echo "job $jobid lost across restart"; exit 1; }
    if echo "$poll" | grep -Eq '"status":"(done|failed)"'; then
        terminal=$(echo "$poll" | json_field status); break
    fi
    sleep 0.2
done
[ "$terminal" = "done" ] || { echo "job $jobid did not finish after restart: ${terminal:-never terminal}"; exit 1; }

resubmit=$(curl -fsS -X POST --data-binary @"$workdir/resume.json" "$base3/v1/analyze")
dupid=$(echo "$resubmit" | json_field job_id)
if [ "$dupid" != "$jobid" ]; then
    echo "idempotent resubmission ran as new job $dupid, want $jobid"; exit 1
fi

kill -TERM "$pid"
wait "$pid" || { echo "soteriad exited non-zero on final SIGTERM"; exit 1; }
trap 'rm -rf "$workdir"' EXIT
echo "phase 3 OK: restart-resume + idempotent resubmission"
echo "soteriad smoke OK"
