package soteria

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6), plus the ablations DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Absolute times differ from the paper's 2.6GHz-laptop JVM numbers;
// the shapes (who wins, where the costs grow) are the reproduction
// target. cmd/soteria-bench prints the corresponding tables.

import (
	"context"
	"fmt"
	"testing"

	"github.com/soteria-analysis/soteria/internal/bmc"
	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/experiments"
	"github.com/soteria-analysis/soteria/internal/groovy"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/ltl"
	"github.com/soteria-analysis/soteria/internal/maliot"
	"github.com/soteria-analysis/soteria/internal/market"
	"github.com/soteria-analysis/soteria/internal/market/audit"
	"github.com/soteria-analysis/soteria/internal/modelcheck"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/statemodel"
	"github.com/soteria-analysis/soteria/internal/symbolic"
	"github.com/soteria-analysis/soteria/internal/symexec"
)

func mustIR(b *testing.B, name, src string) *ir.App {
	b.Helper()
	app, err := ir.BuildSource(name, src)
	if err != nil {
		b.Fatal(err)
	}
	return app
}

func mustSpecIR(b *testing.B, id string) *ir.App {
	b.Helper()
	spec, ok := market.ByID(id)
	if !ok {
		b.Fatalf("app %s missing", id)
	}
	app, err := spec.Parse()
	if err != nil {
		b.Fatal(err)
	}
	return app
}

// BenchmarkTable2Dataset regenerates the corpus statistics (Table 2).
func BenchmarkTable2Dataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Individual analyzes all 65 market apps individually
// (Table 3).
func BenchmarkTable3Individual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4MultiApp analyzes the three Table 4 groups as
// environments.
func BenchmarkTable4MultiApp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMalIoT runs the full Appendix C suite.
func BenchmarkMalIoT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := maliot.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11aStateReduction regenerates the property-abstraction
// figure (Fig. 11 top) — it doubles as the abstraction-on/off
// ablation, since it computes both state counts.
func BenchmarkFig11aStateReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11a(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11bExtraction measures state-model extraction per
// state-count bucket (Fig. 11 bottom): small (4), medium (24), large
// (192) models, plus a group union.
func BenchmarkFig11bExtraction(b *testing.B) {
	cases := []struct {
		name string
		ids  []string
	}{
		{"4-states/water-leak", nil}, // paper running example
		{"24-states/O12", []string{"O12"}},
		{"192-states/O1", []string{"O1"}},
		{"group/G.1", market.Groups()[0].Members},
	}
	for _, c := range cases {
		var apps []*ir.App
		if c.ids == nil {
			apps = []*ir.App{mustIR(b, "water-leak", paperapps.WaterLeakDetector)}
		} else {
			for _, id := range c.ids {
				apps = append(apps, mustSpecIR(b, id))
			}
		}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := statemodel.Build(apps...)
				if err != nil {
					b.Fatal(err)
				}
				_ = kripke.FromModel(m)
			}
		})
	}
}

// BenchmarkUnionAlgorithm measures Algorithm 2 (structural union of
// already-extracted models), the §6.3 union timing.
func BenchmarkUnionAlgorithm(b *testing.B) {
	var models []*statemodel.Model
	for _, id := range market.Groups()[0].Members {
		m, err := statemodel.Build(mustSpecIR(b, id))
		if err != nil {
			b.Fatal(err)
		}
		models = append(models, m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := statemodel.Union(models...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerificationEngines compares the three checking engines on
// the same model and property (§6.3's verification overhead; paper:
// milliseconds per property).
func BenchmarkVerificationEngines(b *testing.B) {
	app := mustSpecIR(b, "O1")
	m, err := statemodel.Build(app)
	if err != nil {
		b.Fatal(err)
	}
	k := kripke.FromModel(m)
	f := ctl.MustParse(`AG ("ev:smokeDetector.smoke.detected" -> "alarm.alarm=siren")`)

	b.Run("explicit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			modelcheck.Check(k, f)
		}
	})
	b.Run("bdd-symbolic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := symbolic.New(k)
			e.Check(f)
		}
	})
	b.Run("sat-bmc-depth10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := bmc.CheckAG(k, f, 10); !ok {
				b.Fatal("formula not handled")
			}
		}
	})
}

// BenchmarkAblationPredicateLabels measures the cost and the spurious
// findings of event-only transition labels (paper §4.2's precision
// discussion).
func BenchmarkAblationPredicateLabels(b *testing.B) {
	app := mustSpecIR(b, "O15")
	for _, mode := range []struct {
		name string
		opt  statemodel.Options
	}{
		{"predicate-labels", statemodel.Options{}},
		{"event-only", statemodel.Options{EventOnlyLabels: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := statemodel.BuildOpt(mode.opt, app)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(m.Nondet)), "nondet-reports")
			}
		})
	}
}

// BenchmarkAblationPathMerging reports ESP merging's path reduction on
// the corpus app with the branchiest handlers.
func BenchmarkAblationPathMerging(b *testing.B) {
	// The leak detector's notification branches all end in the same
	// device state, so ESP merging collapses them (§4.2.2).
	app := mustIR(b, "water-leak", paperapps.WaterLeakDetector)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		explored, merged := 0, 0
		for _, r := range symexec.ExecuteAll(app) {
			explored += r.Explored
			merged += r.Merged
		}
		b.ReportMetric(float64(explored), "explored-paths")
		b.ReportMetric(float64(merged), "merged-paths")
	}
}

// BenchmarkBatch measures the full-corpus market audit (65 apps + the
// Table 4 groups) at several batch-worker counts. Every run is cold
// (no cache), so the parallel sub-benchmarks measure real fan-out;
// speedup over workers/1 tracks GOMAXPROCS — on a single-core runner
// the times are expected to be flat. cmd/soteria-bench -parallel-bench
// writes the sequential-vs-parallel comparison to BENCH_parallel.json.
func BenchmarkBatch(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers/%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := audit.Run(context.Background(), workers, nil)
				for _, e := range rep.Apps {
					if e.Err != nil {
						b.Fatal(e.Err)
					}
				}
			}
		})
	}
}

// BenchmarkBatchCached measures the same audit with a warm memoizing
// cache — the steady-state cost of re-auditing an unchanged corpus.
func BenchmarkBatchCached(b *testing.B) {
	cache := core.NewCache()
	audit.Run(context.Background(), 1, cache) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		audit.Run(context.Background(), 1, cache)
	}
}

// BenchmarkGroovyParse measures parser throughput on the paper's
// largest running example.
func BenchmarkGroovyParse(b *testing.B) {
	src := paperapps.SmokeAlarm
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := groovy.Parse("smoke-alarm", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymbolicExecution measures per-entry-point path exploration
// (§4.2.2) on the branchiest paper handler.
func BenchmarkSymbolicExecution(b *testing.B) {
	app := mustIR(b, "thermostat", paperapps.ThermostatEnergyControl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		symexec.ExecuteAll(app)
	}
}

// BenchmarkBDDEncode measures the symbolic engine's one-time encoding
// cost for the largest single-app model.
func BenchmarkBDDEncode(b *testing.B) {
	app := mustSpecIR(b, "O1")
	m, err := statemodel.Build(app)
	if err != nil {
		b.Fatal(err)
	}
	k := kripke.FromModel(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		symbolic.New(k)
	}
}

// BenchmarkSingleAppPipeline measures the full per-app pipeline
// (parse → IR → model → all properties) on the paper's running
// example — the per-app unit of Table 3's workload.
func BenchmarkSingleAppPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := core.AnalyzeSources(core.DefaultOptions(),
			core.NamedSource{Name: "smoke-alarm", Source: paperapps.SmokeAlarm})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLTL measures the automata-theoretic LTL engine on the
// paper's P.10 phrasing over the largest single-app model.
func BenchmarkLTL(b *testing.B) {
	app := mustSpecIR(b, "O1")
	m, err := statemodel.Build(app)
	if err != nil {
		b.Fatal(err)
	}
	k := kripke.FromModel(m)
	f := ltl.MustParse(`G ("ev:smokeDetector.smoke.detected" -> "alarm.alarm=siren")`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := ltl.Check(k, f); !r.Holds {
			b.Fatal("property should hold")
		}
	}
}
