// Quickstart: parse one SmartThings app, extract its state model, and
// check the full Soteria property suite. The embedded app is the
// paper's §3 buggy smoke alarm (Fig. 2(1b)): a bug silences the alarm
// in the same handler run that sounds it.
package main

import (
	"fmt"
	"log"

	"github.com/soteria-analysis/soteria"
)

const buggySmokeAlarm = `
definition(
    name: "Buggy-Smoke-Alarm",
    namespace: "example",
    author: "Soteria Quickstart",
    description: "Sounds the alarm on smoke - and then silences it (Fig. 2(1b)).",
    category: "Safety & Security")

preferences {
    section("Select smoke detector:") {
        input "smoke_detector", "capability.smokeDetector", required: true
    }
    section("Select alarm device:") {
        input "the_alarm", "capability.alarm", required: true
    }
}

def installed() {
    subscribe(smoke_detector, "smoke", smokeHandler)
}

def smokeHandler(evt) {
    if (evt.value == "detected") {
        the_alarm.siren()
        the_alarm.off()   // the bug: stops the sound moments later
    }
    if (evt.value == "clear") {
        the_alarm.off()
    }
}
`

func main() {
	app, err := soteria.ParseApp("buggy-smoke-alarm", buggySmokeAlarm)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}

	fmt.Println("== Intermediate representation ==")
	fmt.Println(app.IR())

	res, err := soteria.Analyze(app)
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}
	fmt.Printf("== State model: %d states, %d transitions ==\n\n", res.States, res.Transitions)

	if len(res.Violations) == 0 {
		fmt.Println("no violations — but the paper (and this example) says otherwise!")
		return
	}
	fmt.Println("== Violations ==")
	for _, v := range res.Violations {
		fmt.Printf("  %s [%s]: %s\n      %s\n", v.ID, v.Kind, v.Description, v.Detail)
		if v.Counterexample != "" {
			fmt.Printf("      counterexample: %s\n", v.Counterexample)
		}
	}
}
