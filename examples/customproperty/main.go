// Custom properties: beyond the built-in S.1–S.5 and P.1–P.30
// catalogue, Soteria checks any CTL formula over the extracted state
// model. Atomic propositions are "capability.attribute=value" state
// facts and "ev:<event>" markers on states entered via an event.
//
// This example analyzes a garage-automation app against three
// user-written policies and prints the model in Graphviz and NuSMV
// formats for inspection.
package main

import (
	"fmt"
	"log"

	"github.com/soteria-analysis/soteria"
)

const garageApp = `
definition(
    name: "Garage-Automation",
    namespace: "example",
    author: "Soteria Example",
    description: "Opens the garage on arrival, closes it on departure, lights the way.",
    category: "Convenience")

preferences {
    section("Garage") {
        input "garage", "capability.garageDoorControl", title: "Garage door", required: true
    }
    section("Presence") {
        input "driver", "capability.presenceSensor", title: "Driver", required: true
    }
    section("Light") {
        input "garage_light", "capability.switch", title: "Garage light", required: true
    }
}

def installed() {
    subscribe(driver, "presence.present", arrivedHandler)
    subscribe(driver, "presence.not present", departedHandler)
}

def arrivedHandler(evt) {
    garage.open()
    garage_light.on()
}

def departedHandler(evt) {
    garage.close()
    // Note: the light is left on after departure.
}
`

func main() {
	app, err := soteria.ParseApp("garage", garageApp)
	if err != nil {
		log.Fatal(err)
	}
	res, err := soteria.Analyze(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d states, %d transitions, %d catalogue violations\n\n",
		res.States, res.Transitions, len(res.Violations))

	policies := []struct {
		name    string
		formula string
	}{
		{
			"garage opens on arrival",
			`AG ("ev:presenceSensor.presence.present" -> "garageDoorControl.door=open")`,
		},
		{
			"garage closes on departure",
			`AG ("ev:presenceSensor.presence.not present" -> "garageDoorControl.door=closed")`,
		},
		{
			"no light left burning after departure",
			`AG ("ev:presenceSensor.presence.not present" -> "switch.switch=off")`,
		},
	}
	for _, p := range policies {
		holds, cex, err := res.CheckFormula(p.formula)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		status := "HOLDS"
		if !holds {
			status = "FAILS"
		}
		fmt.Printf("%-40s %s\n", p.name, status)
		if cex != "" {
			fmt.Printf("  counterexample: %s\n", cex)
		}
	}

	fmt.Println("\n== Graphviz model (render with `dot -Tpng`) ==")
	fmt.Println(res.DOT())
	fmt.Println("== NuSMV model ==")
	fmt.Println(res.SMV())
}
