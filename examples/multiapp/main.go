// Multi-app environment analysis: the paper's §3 motivating
// interaction. The Smoke-Alarm app opens the water valve (fire
// sprinklers) when smoke is detected; the Water-Leak-Detector app,
// installed alongside it, sees the sprinkler water as a leak and shuts
// the valve — leaving the user at risk from fire. Each app is safe
// alone; the violation only exists in the joint model.
package main

import (
	"fmt"
	"log"

	"github.com/soteria-analysis/soteria"
	"github.com/soteria-analysis/soteria/internal/paperapps"
)

// The sprinkler property: once smoke is detected, the next step must
// not shut the valve while smoke persists.
const sprinklerProperty = `AG (("ev:smokeDetector.smoke.detected" & "smokeDetector.smoke=detected") ->
      AX ("smokeDetector.smoke=detected" -> "valve.valve=open"))`

func main() {
	smoke, err := soteria.ParseApp("smoke-alarm", paperapps.SmokeAlarm)
	if err != nil {
		log.Fatal(err)
	}
	leak, err := soteria.ParseApp("water-leak-detector", paperapps.WaterLeakDetector)
	if err != nil {
		log.Fatal(err)
	}

	// Each app alone satisfies the property.
	for _, app := range []*soteria.App{smoke, leak} {
		res, err := soteria.Analyze(app)
		if err != nil {
			log.Fatal(err)
		}
		holds := "n/a (valve or smoke detector not granted)"
		if app.Name == "smoke-alarm" {
			ok, _, err := res.CheckFormula(sprinklerProperty)
			if err != nil {
				log.Fatal(err)
			}
			holds = fmt.Sprintf("%t", ok)
		}
		fmt.Printf("%-22s states=%-4d violations=%-2d sprinkler property holds: %s\n",
			app.Name, res.States, len(res.Violations), holds)
	}

	// Together they violate it.
	env, err := soteria.AnalyzeEnvironment([]*soteria.App{smoke, leak})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoint environment: %d states, %d transitions\n", env.States, env.Transitions)
	holds, cex, err := env.CheckFormula(sprinklerProperty)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sprinkler property holds: %t\n", holds)
	if !holds {
		fmt.Println("\ncounterexample (the leak detector shuts off the fire sprinkler):")
		fmt.Println(cex)
	}
}
