// Market audit: run the full Soteria pipeline over the 65-app market
// corpus — every app individually, then the three interacting groups —
// and print an auditor-style report, the workload of the paper's §6.1
// evaluation. The whole corpus is fanned out over soteria.AnalyzeBatch;
// pass -parallel to bound the worker pool (the report is identical at
// any setting).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"github.com/soteria-analysis/soteria"
	"github.com/soteria-analysis/soteria/internal/market"
)

func main() {
	parallel := flag.Int("parallel", 4, "concurrent analyses (results are identical at any setting)")
	flag.Parse()

	specs := market.All()
	groups := market.Groups()

	var items []soteria.BatchItem
	for _, spec := range specs {
		app, err := soteria.ParseApp(spec.Name, spec.Source)
		if err != nil {
			log.Fatalf("%s: %v", spec.ID, err)
		}
		items = append(items, soteria.BatchItem{Key: spec.ID, Apps: []*soteria.App{app}})
	}
	for _, g := range groups {
		var apps []*soteria.App
		for _, id := range g.Members {
			spec, _ := market.ByID(id)
			app, err := soteria.ParseApp(spec.Name, spec.Source)
			if err != nil {
				log.Fatalf("%s: %v", id, err)
			}
			apps = append(apps, app)
		}
		items = append(items, soteria.BatchItem{Key: g.ID, Apps: apps})
	}

	results := soteria.AnalyzeBatch(context.Background(), *parallel, items)

	flagged := 0
	for i, spec := range specs {
		r := results[i]
		if r.Err != nil {
			log.Fatalf("%s: %v", spec.ID, r.Err)
		}
		if len(r.Result.Violations) == 0 {
			continue
		}
		flagged++
		var ids []string
		for _, v := range r.Result.Violations {
			ids = append(ids, v.ID)
		}
		kind := "third-party"
		if spec.Official {
			kind = "official"
		}
		fmt.Printf("%-5s %-28s %-12s %s\n", spec.ID, spec.Name, kind, strings.Join(ids, ", "))
	}
	fmt.Printf("\n%d of %d apps flagged individually\n\n", flagged, len(specs))

	for i, g := range groups {
		r := results[len(specs)+i]
		if r.Err != nil {
			log.Fatalf("%s: %v", g.ID, r.Err)
		}
		seen := map[string]bool{}
		var ids []string
		for _, v := range r.Result.Violations {
			if !seen[v.ID] {
				seen[v.ID] = true
				ids = append(ids, v.ID)
			}
		}
		fmt.Printf("group %-4s (%s): %d states, violations: %s\n",
			g.ID, strings.Join(g.Members, ","), r.Result.States, strings.Join(ids, ", "))
	}
}
