// Market audit: run the full Soteria pipeline over the 65-app market
// corpus — every app individually, then the three interacting groups —
// and print an auditor-style report, the workload of the paper's §6.1
// evaluation.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/soteria-analysis/soteria"
	"github.com/soteria-analysis/soteria/internal/market"
)

func main() {
	flagged := 0
	for _, spec := range market.All() {
		app, err := soteria.ParseApp(spec.Name, spec.Source)
		if err != nil {
			log.Fatalf("%s: %v", spec.ID, err)
		}
		res, err := soteria.Analyze(app)
		if err != nil {
			log.Fatalf("%s: %v", spec.ID, err)
		}
		if len(res.Violations) == 0 {
			continue
		}
		flagged++
		var ids []string
		for _, v := range res.Violations {
			ids = append(ids, v.ID)
		}
		kind := "third-party"
		if spec.Official {
			kind = "official"
		}
		fmt.Printf("%-5s %-28s %-12s %s\n", spec.ID, spec.Name, kind, strings.Join(ids, ", "))
	}
	fmt.Printf("\n%d of %d apps flagged individually\n\n", flagged, len(market.All()))

	for _, g := range market.Groups() {
		var apps []*soteria.App
		for _, id := range g.Members {
			spec, _ := market.ByID(id)
			app, err := soteria.ParseApp(spec.Name, spec.Source)
			if err != nil {
				log.Fatalf("%s: %v", id, err)
			}
			apps = append(apps, app)
		}
		res, err := soteria.AnalyzeEnvironment(apps)
		if err != nil {
			log.Fatalf("%s: %v", g.ID, err)
		}
		seen := map[string]bool{}
		var ids []string
		for _, v := range res.Violations {
			if !seen[v.ID] {
				seen[v.ID] = true
				ids = append(ids, v.ID)
			}
		}
		fmt.Printf("group %-4s (%s): %d states, violations: %s\n",
			g.ID, strings.Join(g.Members, ","), res.States, strings.Join(ids, ", "))
	}
}
