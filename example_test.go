package soteria_test

import (
	"fmt"
	"log"

	"github.com/soteria-analysis/soteria"
)

// A minimal leak-protection app: the §3 Water-Leak-Detector pattern.
const leakApp = `
definition(name: "Leak-Guard", namespace: "x", author: "x", category: "Safety & Security")
preferences {
    section("Leak protection") {
        input "water_sensor", "capability.waterSensor"
        input "valve_device", "capability.valve"
    }
}
def installed() { subscribe(water_sensor, "water.wet", h) }
def h(evt) { valve_device.close() }
`

// A broken variant that opens the valve on a leak.
const brokenLeakApp = `
definition(name: "Broken-Leak-Guard", namespace: "x", author: "x", category: "Safety & Security")
preferences {
    section("Leak protection") {
        input "water_sensor", "capability.waterSensor"
        input "valve_device", "capability.valve"
    }
}
def installed() { subscribe(water_sensor, "water.wet", h) }
def h(evt) { valve_device.open() }
`

func ExampleAnalyze() {
	app, err := soteria.ParseApp("leak-guard", leakApp)
	if err != nil {
		log.Fatal(err)
	}
	res, err := soteria.Analyze(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("states: %d, violations: %d\n", res.States, len(res.Violations))
	// Output:
	// states: 4, violations: 0
}

func ExampleAnalyze_violation() {
	app, err := soteria.ParseApp("broken-leak-guard", brokenLeakApp)
	if err != nil {
		log.Fatal(err)
	}
	res, err := soteria.Analyze(app)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range res.Violations {
		fmt.Println(v.ID)
	}
	// Output:
	// P.11
	// P.30
}

func ExampleResult_CheckFormula() {
	app, err := soteria.ParseApp("leak-guard", leakApp)
	if err != nil {
		log.Fatal(err)
	}
	res, err := soteria.Analyze(app)
	if err != nil {
		log.Fatal(err)
	}
	holds, _, err := res.CheckFormula(`AG ("ev:waterSensor.water.wet" -> "valve.valve=closed")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(holds)
	// Output:
	// true
}

func ExampleApp_IR() {
	app, err := soteria.ParseApp("leak-guard", leakApp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(app.Devices())
	// Output:
	// [valve waterSensor]
}
