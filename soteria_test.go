package soteria

import (
	"context"
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/paperapps"
)

func parse(t *testing.T, name, src string) *App {
	t.Helper()
	app, err := ParseApp(name, src)
	if err != nil {
		t.Fatalf("ParseApp(%s): %v", name, err)
	}
	return app
}

func TestAnalyzeCorrectSmokeAlarm(t *testing.T) {
	app := parse(t, "smoke-alarm", paperapps.SmokeAlarm)
	res, err := Analyze(app)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations = %v", res.Violations)
	}
	if res.States != 96 {
		t.Errorf("states = %d, want 96", res.States)
	}
	if res.StatesBeforeReduction <= res.States {
		t.Errorf("before=%d after=%d", res.StatesBeforeReduction, res.States)
	}
	if res.Transitions == 0 {
		t.Error("no transitions")
	}
}

func TestAnalyzeBuggySmokeAlarm(t *testing.T) {
	app := parse(t, "buggy", paperapps.BuggySmokeAlarm)
	res, err := Analyze(app)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated("P.10") {
		t.Errorf("P.10 not flagged; violations = %v", res.Violations)
	}
	if !res.Violated("S.1") {
		t.Errorf("S.1 not flagged; violations = %v", res.Violations)
	}
	// Counterexample present on the P.10 violation.
	for _, v := range res.Violations {
		if v.ID == "P.10" && v.Counterexample == "" {
			t.Error("P.10 violation lacks a counterexample")
		}
	}
}

func TestAnalyzeEnvironmentSprinkler(t *testing.T) {
	smoke := parse(t, "smoke-alarm", paperapps.SmokeAlarm)
	leak := parse(t, "water-leak", paperapps.WaterLeakDetector)
	res, err := AnalyzeEnvironment([]*App{smoke, leak})
	if err != nil {
		t.Fatal(err)
	}
	// The §3 interaction: verify the sprinkler property via a custom
	// formula.
	holds, cex, err := res.CheckFormula(
		`AG (("ev:smokeDetector.smoke.detected" & "smokeDetector.smoke=detected") -> AX ("smokeDetector.smoke=detected" -> "valve.valve=open"))`)
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("sprinkler property should fail in the joint environment")
	}
	if cex == "" {
		t.Error("expected counterexample")
	}
}

func TestOptionsFiltering(t *testing.T) {
	app := parse(t, "buggy", paperapps.BuggySmokeAlarm)
	res, err := Analyze(app, WithGeneralOnly())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		if v.Kind == AppSpecificViolation {
			t.Errorf("app-specific violation with WithGeneralOnly: %v", v)
		}
	}
	res, err = Analyze(app, WithAppSpecificOnly(), WithProperties("P.10"))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		if v.ID != "P.10" {
			t.Errorf("unexpected violation %v", v)
		}
	}
	if !res.Violated("P.10") {
		t.Error("P.10 should be flagged")
	}
}

func TestIRAndDevices(t *testing.T) {
	app := parse(t, "water-leak", paperapps.WaterLeakDetector)
	irText := app.IR()
	if !strings.Contains(irText, "input (water_sensor, waterSensor, type:device)") {
		t.Errorf("IR output:\n%s", irText)
	}
	devs := app.Devices()
	if len(devs) != 2 || devs[0] != "valve" || devs[1] != "waterSensor" {
		t.Errorf("devices = %v", devs)
	}
}

func TestDOTAndSMVOutputs(t *testing.T) {
	app := parse(t, "water-leak", paperapps.WaterLeakDetector)
	res, err := Analyze(app)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.DOT(), "digraph") {
		t.Error("DOT output malformed")
	}
	if !strings.Contains(res.SMV(), "MODULE main") {
		t.Error("SMV output malformed")
	}
}

func TestCheckFormulaParseError(t *testing.T) {
	app := parse(t, "water-leak", paperapps.WaterLeakDetector)
	res, err := Analyze(app)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.CheckFormula("(("); err == nil {
		t.Error("expected parse error")
	}
}

func TestPropertyIDs(t *testing.T) {
	ids := PropertyIDs()
	// 30 app-specific + 6 taint.
	if len(ids) != 36 {
		t.Errorf("catalogue size = %d", len(ids))
	}
	if ids["P.30"] == "" {
		t.Error("P.30 missing")
	}
	if ids["T.6"] == "" {
		t.Error("T.6 missing")
	}
}

func TestParseErrorStillReturnsApp(t *testing.T) {
	app, err := ParseApp("bad", "def h() { if ( }")
	if err == nil {
		t.Error("expected error")
	}
	if app == nil {
		t.Error("best-effort app expected")
	}
}

func TestReflectionFlag(t *testing.T) {
	app := parse(t, "reflect", `
preferences { section("s") { input "the_alarm", "capability.alarm" } }
def installed() { subscribe(app, h) }
def h(evt) { "$name"() }
def foo() { the_alarm.siren() }
`)
	if !app.UsesReflection() {
		t.Error("UsesReflection should be true")
	}
}

func TestCheckFormulaEngines(t *testing.T) {
	app := parse(t, "buggy", paperapps.BuggySmokeAlarm)
	res, err := Analyze(app)
	if err != nil {
		t.Fatal(err)
	}
	prop := `AG ("ev:smokeDetector.smoke.detected" -> "alarm.alarm=siren")`
	for _, eng := range []Engine{Explicit, BDD, BMC} {
		holds, _, err := res.CheckFormulaEngine(prop, eng)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if holds {
			t.Errorf("%s: property should fail on the buggy app", eng)
		}
	}
	// BMC rejects nested temporal bodies.
	if _, _, err := res.CheckFormulaEngine(`AG (EF "alarm.alarm=off")`, BMC); err == nil {
		t.Error("BMC should reject nested temporal formulas")
	}
	// Unknown engine.
	if _, _, err := res.CheckFormulaEngine(prop, Engine("quantum")); err == nil {
		t.Error("unknown engine should error")
	}
}

func TestEnginesAgreeOnCatalogue(t *testing.T) {
	app := parse(t, "smoke-alarm", paperapps.SmokeAlarm)
	res, err := Analyze(app)
	if err != nil {
		t.Fatal(err)
	}
	formulas := []string{
		`AG ("ev:smokeDetector.smoke.detected" -> "alarm.alarm=siren")`,
		`AG ("ev:smokeDetector.smoke.clear" -> "alarm.alarm=off")`,
		`AG ("ev:smokeDetector.smoke.detected" -> "valve.valve=open")`,
	}
	for _, f := range formulas {
		e1, _, err1 := res.CheckFormulaEngine(f, Explicit)
		e2, _, err2 := res.CheckFormulaEngine(f, BDD)
		e3, _, err3 := res.CheckFormulaEngine(f, BMC)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("%s: %v %v %v", f, err1, err2, err3)
		}
		if e1 != e2 || e1 != e3 {
			t.Errorf("%s: engines disagree explicit=%t bdd=%t bmc=%t", f, e1, e2, e3)
		}
	}
}

func TestWitnessFormula(t *testing.T) {
	smoke := parse(t, "smoke-alarm", paperapps.SmokeAlarm)
	leak := parse(t, "water-leak", paperapps.WaterLeakDetector)
	res, err := AnalyzeEnvironment([]*App{smoke, leak})
	if err != nil {
		t.Fatal(err)
	}
	// Can the valve end up closed while smoke is detected? (The §3
	// interaction says yes.)
	trace, ok, err := res.WitnessFormula(
		`EF ("smokeDetector.smoke=detected" & "valve.valve=closed")`)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || trace == "" {
		t.Errorf("expected a witness trace; ok=%t", ok)
	}
	// An unsatisfiable query yields no witness.
	_, ok, err = res.WitnessFormula(`EF ("valve.valve=open" & "valve.valve=closed")`)
	if err != nil || ok {
		t.Errorf("impossible state should have no witness (ok=%t err=%v)", ok, err)
	}
	// Universal formulas are rejected as non-existential.
	_, ok, err = res.WitnessFormula(`AG "valve.valve=open"`)
	if err != nil || ok {
		t.Errorf("AG should produce no witness (ok=%t err=%v)", ok, err)
	}
	if _, _, err := res.WitnessFormula("(("); err == nil {
		t.Error("expected parse error")
	}
}

func TestCheckLTL(t *testing.T) {
	app := parse(t, "buggy", paperapps.BuggySmokeAlarm)
	res, err := Analyze(app)
	if err != nil {
		t.Fatal(err)
	}
	// The LTL phrasing of P.10: whenever a detected event is handled,
	// the alarm is sounding.
	holds, cex, err := res.CheckLTL(`G ("ev:smokeDetector.smoke.detected" -> "alarm.alarm=siren")`)
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("LTL P.10 should fail on the buggy app")
	}
	if !strings.Contains(cex, "loops back") {
		t.Errorf("lasso rendering missing loop annotation:\n%s", cex)
	}

	good := parse(t, "smoke-alarm", paperapps.SmokeAlarm)
	gres, err := Analyze(good)
	if err != nil {
		t.Fatal(err)
	}
	holds, _, err = gres.CheckLTL(`G ("ev:smokeDetector.smoke.detected" -> "alarm.alarm=siren")`)
	if err != nil || !holds {
		t.Errorf("LTL P.10 should hold on the correct app (err=%v)", err)
	}
	if _, _, err := gres.CheckLTL("(("); err == nil {
		t.Error("expected parse error")
	}
}

// taintLeakSrc exfiltrates device state over SMS — exactly one T.2
// flow for the family-selection tests below.
const taintLeakSrc = `
definition(name: "leak", namespace: "t", author: "t")
preferences {
    section("Devices") { input "kids", "capability.presenceSensor" }
}
def installed() { subscribe(kids, "presence.not present", h) }
def h(evt) {
    sendSms("555-0100", "left: ${evt.displayName}")
}
`

func TestTaintOptionFiltering(t *testing.T) {
	app := parse(t, "leak", taintLeakSrc)

	res, err := Analyze(app, WithTaintOnly())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaintFlows) != 1 || res.TaintFlows[0].ID != "T.2" {
		t.Fatalf("taint flows = %+v, want one T.2", res.TaintFlows)
	}
	if !res.Violated("T.2") {
		t.Error("T.2 should be flagged")
	}
	for _, v := range res.Violations {
		if v.Kind != TaintViolation {
			t.Errorf("non-taint violation with WithTaintOnly: %v", v)
		}
	}

	// WithChecks(taint=false) must suppress the family entirely.
	res, err = Analyze(app, WithChecks(true, true, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaintFlows) != 0 || res.Violated("T.2") {
		t.Errorf("taint results despite WithChecks(_, _, false): %+v", res.TaintFlows)
	}

	// The T.* wildcard expands to the family; a mismatched ID filter
	// silences it.
	res, err = Analyze(app, WithTaintOnly(), WithProperties("T.*"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated("T.2") {
		t.Error("T.* filter should still flag T.2")
	}
	res, err = Analyze(app, WithTaintOnly(), WithProperties("T.1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaintFlows) != 0 {
		t.Errorf("T.1 filter leaked T.2 flows: %+v", res.TaintFlows)
	}

	// AnalyzeContext is the same analysis under a live context.
	cres, err := AnalyzeContext(context.Background(), app, WithTaintOnly())
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.TaintFlows) != 1 {
		t.Errorf("AnalyzeContext flows = %+v", cres.TaintFlows)
	}
}
